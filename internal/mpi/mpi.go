// Package mpi is an SPMD message-passing runtime standing in for MPI in
// the paper's distributed-memory algorithms. The collective algorithms
// (Barrier, Bcast, Reduce, AllReduce, AllGather, AllToAll) are built
// from point-to-point sends with conventional algorithms on top of a
// pluggable transport:
//
//   - World simulates all ranks as goroutines inside one process, each
//     pair connected by a buffered FIFO channel carrying copied
//     messages — rank code shares nothing and all data movement is
//     explicit, exactly the discipline of the MPI implementation the
//     paper benchmarks.
//
//   - TCPWorld (tcp.go) is one OS process per rank with per-peer
//     persistent TCP connections carrying length-prefixed binary frames
//     (frame.go), so the same rank code runs across real processes and
//     machines.
//
// Every rank counts the payload bytes it sends, which is how the
// experiment harness measures the communication volumes of Tables
// II–IV; the counting rule (8 bytes per float64, 4 per int32,
// self-sends free) is identical on both transports, so the accounting
// is transport-invariant. Reductions accumulate in fixed rank order at
// a root and broadcast the result, so every rank observes bitwise
// identical values — the property that keeps the redundant SPMD Lanczos
// iterations in lockstep and makes fit trajectories bitwise identical
// between the simulated and TCP worlds.
package mpi

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Sentinel error conditions a transport operation can fail with; match
// them with errors.Is against the error returned by Run/RunContext.
var (
	// ErrAborted marks a rank that was torn down because another rank
	// failed first (or the run context expired) — the consequence, not
	// the cause, of the failure.
	ErrAborted = errors.New("aborted after another rank failed")
	// ErrTimeout marks a receive that waited longer than the transport's
	// configured timeout.
	ErrTimeout = errors.New("timeout")
	// ErrPeerClosed marks a receive from a peer that shut its connection
	// down cleanly while this rank still expected data.
	ErrPeerClosed = errors.New("peer closed connection")
	// ErrPeerDied marks a connection that failed mid-protocol (reset,
	// unexpected EOF): the peer process is gone.
	ErrPeerDied = errors.New("peer connection failed")
	// ErrBadFrame marks a malformed, truncated, or oversized wire frame.
	ErrBadFrame = errors.New("malformed frame")
	// ErrHandshake marks a connection-setup handshake that failed
	// (protocol version, world size, or rank mismatch).
	ErrHandshake = errors.New("handshake failed")
)

// Error is the typed failure of a transport operation: which rank
// observed it, which peer was involved (-1 when none), and the
// operation that failed. It unwraps to one of the sentinel conditions
// above (or to an underlying I/O error).
type Error struct {
	Rank int    // local rank observing the failure, -1 for the world itself
	Peer int    // peer rank involved, -1 when not peer-specific
	Op   string // "send", "recv", "handshake", "decode", "run", ...
	Err  error
}

func (e *Error) Error() string {
	switch {
	case e.Rank < 0:
		return fmt.Sprintf("mpi: %s: %v", e.Op, e.Err)
	case e.Peer >= 0:
		return fmt.Sprintf("mpi: rank %d: %s (peer %d): %v", e.Rank, e.Op, e.Peer, e.Err)
	}
	return fmt.Sprintf("mpi: rank %d: %s: %v", e.Rank, e.Op, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// message is one point-to-point transfer. Payloads are copied on send so
// ranks never alias each other's memory.
type message struct {
	tag  int
	f    []float64
	i    []int32
	meta int
}

// payloadBytes is the transport-invariant accounting size of a message:
// 8 bytes per float64, 4 per int32, headers free.
func (m *message) payloadBytes() int64 { return int64(8*len(m.f) + 4*len(m.i)) }

// transport is one rank's point-to-point endpoint. send and recv panic
// with a *Error on failure or abort; Run/RunContext recover the panic
// into the returned error, so rank code keeps its straight-line shape.
type transport interface {
	rank() int
	size() int
	send(dst int, m message)
	recv(src int) message
	bytesSent() int64
	wireSent() int64
}

// Runner is the surface shared by the in-process World and the
// multi-process TCPWorld: drivers written against it (internal/dist)
// run unchanged on either transport. For a World, RunContext executes
// body once per rank on its own goroutine; for a TCPWorld it executes
// body once, for the local rank, on the calling goroutine.
type Runner interface {
	Size() int
	RunContext(ctx context.Context, body func(c *Comm)) error
}

// World owns the in-process communication fabric for a fixed number of
// simulated ranks.
type World struct {
	p     int
	chans [][]chan message // chans[src][dst]
	sent  []atomic.Int64   // payload bytes sent per rank

	// done is closed on the first rank failure (or context expiry);
	// every blocked send/recv then panics with ErrAborted instead of
	// deadlocking, so Run never leaks rank goroutines.
	done     chan struct{}
	failOnce sync.Once
	cause    error // set before done is closed

	// faults, when armed via InjectFaults, wraps every rank endpoint
	// with deterministic fault injection.
	faults *FaultConfig
}

// NewWorld creates a fabric for p ranks.
func NewWorld(p int) *World {
	if p < 1 {
		panic("mpi: need at least one rank")
	}
	w := &World{
		p:     p,
		chans: make([][]chan message, p),
		sent:  make([]atomic.Int64, p),
		done:  make(chan struct{}),
	}
	for s := 0; s < p; s++ {
		w.chans[s] = make([]chan message, p)
		for d := 0; d < p; d++ {
			w.chans[s][d] = make(chan message, chanDepth)
		}
	}
	return w
}

// chanDepth is the per-link buffering of both transports: the simulated
// fabric's channel capacity and the TCP fabric's per-peer inbox/outbox
// depth, so backpressure behaves alike.
const chanDepth = 1024

// Size returns the number of ranks.
func (w *World) Size() int { return w.p }

// InjectFaults arms deterministic fault injection on every rank of the
// world: each rank's endpoint is wrapped in a FaultyTransport when the
// next Run/RunContext starts. Call before Run; a World with injected
// faults follows the usual rule that it must not be reused after an
// error.
func (w *World) InjectFaults(cfg FaultConfig) { w.faults = &cfg }

// fail records the first failure cause and releases every blocked rank.
func (w *World) fail(err error) {
	w.failOnce.Do(func() {
		w.cause = err
		close(w.done)
	})
}

// Run executes body on every rank concurrently (SPMD) and waits for all
// of them. It is RunContext with a background context.
func (w *World) Run(body func(c *Comm)) error {
	return w.RunContext(context.Background(), body)
}

// RunContext executes body on every rank concurrently (SPMD) and waits
// for all of them. A panic on any rank is captured and returned as an
// error naming the rank; the remaining ranks are aborted — every
// blocked send or receive fails with ErrAborted instead of deadlocking,
// so no rank goroutine outlives the call. Cancelling (or timing out)
// ctx aborts a deadlocked world the same way. A World must not be
// reused after an error.
func (w *World) RunContext(ctx context.Context, body func(c *Comm)) error {
	var wg sync.WaitGroup
	rankErr := make([]error, w.p)
	wg.Add(w.p)
	for r := 0; r < w.p; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					err := recoveredError(rank, e)
					rankErr[rank] = err
					w.fail(err)
				}
			}()
			var t transport = &chanEndpoint{w: w, r: rank}
			if w.faults != nil {
				t = newFaultyTransport(t, *w.faults)
			}
			body(&Comm{t: t})
		}(r)
	}
	bodyDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			w.fail(&Error{Rank: -1, Peer: -1, Op: "run", Err: ctx.Err()})
		case <-bodyDone:
		}
	}()
	wg.Wait()
	close(bodyDone)
	return firstCause(rankErr, w)
}

// recoveredError shapes a recovered panic value into the run error.
func recoveredError(rank int, e any) error {
	if te, ok := e.(*Error); ok {
		return te
	}
	return fmt.Errorf("mpi: rank %d panicked: %v", rank, e)
}

// firstCause picks the root-cause error of a run: the first rank error
// that is not a mere abort consequence, else the world's recorded cause
// (e.g. context expiry), else the first abort.
func firstCause(rankErr []error, w *World) error {
	var aborted error
	for _, err := range rankErr {
		if err == nil {
			continue
		}
		if errors.Is(err, ErrAborted) {
			if aborted == nil {
				aborted = err
			}
			continue
		}
		return err
	}
	if aborted != nil {
		select {
		case <-w.done:
			if w.cause != nil && !errors.Is(w.cause, ErrAborted) {
				return w.cause
			}
		default:
		}
		return aborted
	}
	return nil
}

// BytesSent returns the payload bytes sent so far by the given rank.
func (w *World) BytesSent(rank int) int64 { return w.sent[rank].Load() }

// SnapshotBytes returns a copy of all per-rank sent-byte counters.
func (w *World) SnapshotBytes() []int64 {
	out := make([]int64, w.p)
	for r := range out {
		out[r] = w.sent[r].Load()
	}
	return out
}

// ResetCounters zeroes the byte counters (call between setup and the
// measured iterations; must not race with sends).
func (w *World) ResetCounters() {
	for r := range w.sent {
		w.sent[r].Store(0)
	}
}

// chanEndpoint is one simulated rank's transport: buffered channels to
// every peer, with the world's done channel aborting blocked operations.
type chanEndpoint struct {
	w *World
	r int
}

func (t *chanEndpoint) rank() int { return t.r }
func (t *chanEndpoint) size() int { return t.w.p }

// bytesSent is this rank's payload-byte counter; wireSent equals it for
// the in-process fabric, which has no frame overhead.
func (t *chanEndpoint) bytesSent() int64 { return t.w.sent[t.r].Load() }
func (t *chanEndpoint) wireSent() int64  { return t.w.sent[t.r].Load() }

func (t *chanEndpoint) send(dst int, m message) {
	if dst != t.r {
		// Self-sends are allowed (they simplify exchange loops) and are
		// free; everything else counts payload bytes.
		t.w.sent[t.r].Add(m.payloadBytes())
	}
	select {
	case t.w.chans[t.r][dst] <- m:
	case <-t.w.done:
		panic(&Error{Rank: t.r, Peer: dst, Op: "send", Err: ErrAborted})
	}
}

func (t *chanEndpoint) recv(src int) message {
	select {
	case m := <-t.w.chans[src][t.r]:
		return m
	case <-t.w.done:
		panic(&Error{Rank: t.r, Peer: src, Op: "recv", Err: ErrAborted})
	}
}

// Comm is one rank's endpoint over either transport. Methods must only
// be called from the goroutine executing the rank's body.
type Comm struct {
	t transport
}

// Rank returns the caller's rank id.
func (c *Comm) Rank() int { return c.t.rank() }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.t.size() }

// BytesSent returns the payload bytes this rank has sent (8 per
// float64, 4 per int32; self-sends and frame headers free). The count
// is identical between the simulated and TCP transports.
func (c *Comm) BytesSent() int64 { return c.t.bytesSent() }

// WireBytesSent returns the bytes this rank actually put on the wire,
// including frame headers. For the in-process fabric it equals
// BytesSent; for TCP it is larger by the per-frame header overhead.
func (c *Comm) WireBytesSent() int64 { return c.t.wireSent() }

const (
	tagUserBase = 1 << 20
	tagBarrier  = 1
	tagBcast    = 2
	tagReduce   = 3
	tagGather   = 4
	tagExchange = 5
	tagSparse   = 6
)

// Send transfers a copy of data to dst with the given tag (use tags >= 0;
// the collective implementations use a reserved space internally).
func (c *Comm) Send(dst, tag int, data []float64) {
	c.sendMsg(dst, message{tag: tagUserBase + tag, f: append([]float64(nil), data...)})
}

// SendInt32s transfers a copy of an int32 slice.
func (c *Comm) SendInt32s(dst, tag int, data []int32) {
	c.sendMsg(dst, message{tag: tagUserBase + tag, i: append([]int32(nil), data...)})
}

// Recv receives the next float64 message from src, which must carry the
// given tag — a mismatch is a protocol bug and panics.
func (c *Comm) Recv(src, tag int) []float64 {
	m := c.recvMsg(src, tagUserBase+tag)
	return m.f
}

// RecvInt32s receives the next int32 message from src with the tag.
func (c *Comm) RecvInt32s(src, tag int) []int32 {
	m := c.recvMsg(src, tagUserBase+tag)
	return m.i
}

func (c *Comm) sendMsg(dst int, m message) { c.t.send(dst, m) }

func (c *Comm) recvMsg(src, tag int) message {
	m := c.t.recv(src)
	if m.tag != tag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d", c.Rank(), tag, src, m.tag))
	}
	return m
}

// Barrier blocks until every rank has entered it (dissemination
// algorithm, ceil(log2 P) zero-byte rounds).
func (c *Comm) Barrier() {
	p := c.Size()
	me := c.Rank()
	for dist := 1; dist < p; dist *= 2 {
		dst := (me + dist) % p
		src := (me - dist + p) % p
		c.sendMsg(dst, message{tag: tagBarrier, meta: dist})
		m := c.recvMsg(src, tagBarrier)
		if m.meta != dist {
			panic("mpi: barrier round mismatch")
		}
	}
}

// Bcast distributes root's data to every rank through a binomial tree
// and returns the received slice (root returns data unchanged).
func (c *Comm) Bcast(root int, data []float64) []float64 {
	p := c.Size()
	if p == 1 {
		return data
	}
	// Work in a rotated rank space where root is 0.
	vr := (c.Rank() - root + p) % p
	if vr != 0 {
		src := findBcastParent(vr, p)
		data = c.recvMsg((src+root)%p, tagBcast).f
	}
	for dist := nextPow2(p); dist >= 1; dist /= 2 {
		if vr%(2*dist) == 0 && vr+dist < p {
			dst := (vr + dist + root) % p
			c.sendMsg(dst, message{tag: tagBcast, f: append([]float64(nil), data...)})
		}
	}
	return data
}

// findBcastParent returns the virtual rank that sends to vr in the
// binomial broadcast.
func findBcastParent(vr, p int) int {
	for dist := 1; dist < p; dist *= 2 {
		if vr%(2*dist) == dist {
			return vr - dist
		}
	}
	panic("mpi: unreachable bcast parent")
}

func nextPow2(p int) int {
	d := 1
	for d*2 < p {
		d *= 2
	}
	return d
}

// ReduceSum sums data across ranks element-wise at root. Non-roots send
// their contribution directly to root; root accumulates in ascending
// rank order so the result is deterministic. Returns the sum at root and
// nil elsewhere.
func (c *Comm) ReduceSum(root int, data []float64) []float64 {
	if c.Rank() != root {
		c.sendMsg(root, message{tag: tagReduce, f: append([]float64(nil), data...)})
		return nil
	}
	acc := append([]float64(nil), data...)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		m := c.recvMsg(r, tagReduce)
		if len(m.f) != len(acc) {
			panic("mpi: ReduceSum length mismatch")
		}
		for i, v := range m.f {
			acc[i] += v
		}
	}
	return acc
}

// AllReduceSum sums data element-wise across all ranks; every rank
// receives the bitwise-identical result (reduce to rank 0, then
// broadcast).
func (c *Comm) AllReduceSum(data []float64) []float64 {
	acc := c.ReduceSum(0, data)
	if c.Rank() != 0 {
		acc = nil
	}
	if acc == nil {
		acc = make([]float64, len(data))
	}
	return c.Bcast(0, acc)
}

// AllReduceScalar is AllReduceSum for a single value.
func (c *Comm) AllReduceScalar(v float64) float64 {
	return c.AllReduceSum([]float64{v})[0]
}

// AllGatherV exchanges each rank's (variable-length) slice with every
// other rank directly; the result is indexed by rank. Total traffic is
// P·(P−1)·m, the information-theoretic volume of an allgather.
func (c *Comm) AllGatherV(local []float64) [][]float64 {
	p := c.Size()
	me := c.Rank()
	out := make([][]float64, p)
	out[me] = append([]float64(nil), local...)
	for off := 1; off < p; off++ {
		dst := (me + off) % p
		c.sendMsg(dst, message{tag: tagGather, f: append([]float64(nil), local...), meta: me})
	}
	for off := 1; off < p; off++ {
		src := (me - off + p) % p
		m := c.recvMsg(src, tagGather)
		out[m.meta] = m.f
	}
	return out
}

// AllGatherInt32s is AllGatherV for int32 payloads (partition setup).
func (c *Comm) AllGatherInt32s(local []int32) [][]int32 {
	p := c.Size()
	me := c.Rank()
	out := make([][]int32, p)
	out[me] = append([]int32(nil), local...)
	for off := 1; off < p; off++ {
		dst := (me + off) % p
		c.sendMsg(dst, message{tag: tagGather, i: append([]int32(nil), local...), meta: me})
	}
	for off := 1; off < p; off++ {
		src := (me - off + p) % p
		m := c.recvMsg(src, tagGather)
		out[m.meta] = m.i
	}
	return out
}

// AllToAllV sends bufs[d] to rank d and returns the per-source received
// slices. bufs[c.Rank()] is delivered locally without counting traffic.
// Nil buffers are sent as empty slices.
func (c *Comm) AllToAllV(bufs [][]float64) [][]float64 {
	p := c.Size()
	me := c.Rank()
	if len(bufs) != p {
		panic("mpi: AllToAllV needs one buffer per rank")
	}
	out := make([][]float64, p)
	out[me] = append([]float64(nil), bufs[me]...)
	for off := 1; off < p; off++ {
		dst := (me + off) % p
		c.sendMsg(dst, message{tag: tagExchange, f: append([]float64(nil), bufs[dst]...), meta: me})
	}
	for off := 1; off < p; off++ {
		src := (me - off + p) % p
		m := c.recvMsg(src, tagExchange)
		out[m.meta] = m.f
	}
	return out
}

// SparseAllToAllV is the neighborhood exchange of a precomputed sparse
// communication plan: it sends bufs[d] to exactly the ranks d with a
// non-empty buffer and receives exactly one message from each rank in
// recvFrom, returning the per-source slices (indexed by rank, nil for
// ranks not in recvFrom). Unlike AllToAllV no empty messages travel, so
// a rank talks only to its actual sharers — the volume and the message
// count realize the plan, nothing more.
//
// The send and receive plans must agree globally (rank s lists d as a
// destination iff rank d lists s in recvFrom); both sides derive them
// from the same replicated partition, so no index traffic is needed to
// reconcile. Sends go out in ascending (me+off)%p offset order and
// receives complete in ascending (me-off+p)%p order — the same
// deterministic schedule as the dense collectives, so the primitive is
// bitwise reproducible on both transports. bufs[me], when non-empty, is
// delivered locally without counting traffic. On the TCP transport the
// per-peer writer goroutines coalesce queued frames into single socket
// writes, so the posted sends overlap with the caller's pack/unpack
// loops.
func (c *Comm) SparseAllToAllV(bufs [][]float64, recvFrom []int) [][]float64 {
	p := c.Size()
	me := c.Rank()
	if len(bufs) != p {
		panic("mpi: SparseAllToAllV needs one buffer slot per rank")
	}
	out := make([][]float64, p)
	if len(bufs[me]) > 0 {
		out[me] = append([]float64(nil), bufs[me]...)
	}
	want := make([]bool, p)
	for _, src := range recvFrom {
		if src < 0 || src >= p || src == me {
			panic(fmt.Sprintf("mpi: rank %d: SparseAllToAllV source %d out of range", me, src))
		}
		if want[src] {
			panic(fmt.Sprintf("mpi: rank %d: SparseAllToAllV source %d listed twice", me, src))
		}
		want[src] = true
	}
	for off := 1; off < p; off++ {
		dst := (me + off) % p
		if len(bufs[dst]) == 0 {
			continue
		}
		c.sendMsg(dst, message{tag: tagSparse, f: append([]float64(nil), bufs[dst]...), meta: me})
	}
	for off := 1; off < p; off++ {
		src := (me - off + p) % p
		if !want[src] {
			continue
		}
		m := c.recvMsg(src, tagSparse)
		if m.meta != src {
			panic(fmt.Sprintf("mpi: rank %d: SparseAllToAllV expected a message from %d, got one stamped %d", me, src, m.meta))
		}
		out[src] = m.f
	}
	return out
}

// AllToAllInt32s is AllToAllV for int32 payloads.
func (c *Comm) AllToAllInt32s(bufs [][]int32) [][]int32 {
	p := c.Size()
	me := c.Rank()
	if len(bufs) != p {
		panic("mpi: AllToAllInt32s needs one buffer per rank")
	}
	out := make([][]int32, p)
	out[me] = append([]int32(nil), bufs[me]...)
	for off := 1; off < p; off++ {
		dst := (me + off) % p
		c.sendMsg(dst, message{tag: tagExchange, i: append([]int32(nil), bufs[dst]...), meta: me})
	}
	for off := 1; off < p; off++ {
		src := (me - off + p) % p
		m := c.recvMsg(src, tagExchange)
		out[m.meta] = m.i
	}
	return out
}
