// Package mpi is an SPMD message-passing runtime standing in for MPI in
// the paper's distributed-memory algorithms. Ranks are goroutines
// launched by World.Run; each pair of ranks is connected by a buffered
// FIFO channel carrying copied messages, so rank code shares nothing and
// all data movement is explicit — exactly the discipline of the MPI
// implementation the paper benchmarks. Collectives (Barrier, Bcast,
// Reduce, AllReduce, AllGather, AllToAll) are built from point-to-point
// sends with conventional algorithms, and every rank counts the bytes it
// sends, which is how the experiment harness measures the communication
// volumes of Tables II–IV. Reductions accumulate in fixed rank order at
// a root and broadcast the result, so every rank observes bitwise
// identical values — the property that keeps the redundant SPMD Lanczos
// iterations in lockstep.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// message is one point-to-point transfer. Payloads are copied on send so
// ranks never alias each other's memory.
type message struct {
	tag  int
	f    []float64
	i    []int32
	meta int
}

// World owns the communication fabric for a fixed number of ranks.
type World struct {
	p     int
	chans [][]chan message // chans[src][dst]
	sent  []atomic.Int64   // bytes sent per rank
}

// NewWorld creates a fabric for p ranks.
func NewWorld(p int) *World {
	if p < 1 {
		panic("mpi: need at least one rank")
	}
	w := &World{p: p, chans: make([][]chan message, p), sent: make([]atomic.Int64, p)}
	for s := 0; s < p; s++ {
		w.chans[s] = make([]chan message, p)
		for d := 0; d < p; d++ {
			w.chans[s][d] = make(chan message, 1024)
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.p }

// Run executes body on every rank concurrently (SPMD) and waits for all
// of them. A panic on any rank is captured and returned as an error
// naming the rank; remaining ranks may then be deadlocked-but-abandoned,
// as after a real MPI abort, so a World must not be reused after an
// error.
func (w *World) Run(body func(c *Comm)) error {
	var wg sync.WaitGroup
	panics := make([]any, w.p)
	wg.Add(w.p)
	for r := 0; r < w.p; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					panics[rank] = e
				}
			}()
			body(&Comm{w: w, rank: rank})
		}(r)
	}
	wg.Wait()
	for r, e := range panics {
		if e != nil {
			return fmt.Errorf("mpi: rank %d panicked: %v", r, e)
		}
	}
	return nil
}

// BytesSent returns the bytes sent so far by the given rank.
func (w *World) BytesSent(rank int) int64 { return w.sent[rank].Load() }

// SnapshotBytes returns a copy of all per-rank sent-byte counters.
func (w *World) SnapshotBytes() []int64 {
	out := make([]int64, w.p)
	for r := range out {
		out[r] = w.sent[r].Load()
	}
	return out
}

// ResetCounters zeroes the byte counters (call between setup and the
// measured iterations; must not race with sends).
func (w *World) ResetCounters() {
	for r := range w.sent {
		w.sent[r].Store(0)
	}
}

// Comm is one rank's endpoint. Methods must only be called from the
// goroutine that Run started for this rank.
type Comm struct {
	w    *World
	rank int
}

// Rank returns the caller's rank id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.w.p }

// World returns the owning world (for counter access in drivers).
func (c *Comm) World() *World { return c.w }

const (
	tagUserBase = 1 << 20
	tagBarrier  = 1
	tagBcast    = 2
	tagReduce   = 3
	tagGather   = 4
	tagExchange = 5
)

// Send transfers a copy of data to dst with the given tag (use tags >= 0;
// the collective implementations use a reserved space internally).
func (c *Comm) Send(dst, tag int, data []float64) {
	c.sendMsg(dst, message{tag: tagUserBase + tag, f: append([]float64(nil), data...)})
}

// SendInt32s transfers a copy of an int32 slice.
func (c *Comm) SendInt32s(dst, tag int, data []int32) {
	c.sendMsg(dst, message{tag: tagUserBase + tag, i: append([]int32(nil), data...)})
}

// Recv receives the next float64 message from src, which must carry the
// given tag — a mismatch is a protocol bug and panics.
func (c *Comm) Recv(src, tag int) []float64 {
	m := c.recvMsg(src, tagUserBase+tag)
	return m.f
}

// RecvInt32s receives the next int32 message from src with the tag.
func (c *Comm) RecvInt32s(src, tag int) []int32 {
	m := c.recvMsg(src, tagUserBase+tag)
	return m.i
}

func (c *Comm) sendMsg(dst int, m message) {
	if dst == c.rank {
		// Self-sends are allowed (simplifies exchange loops) and are
		// free: no bytes counted, delivered through the same channel.
		c.w.chans[c.rank][dst] <- m
		return
	}
	c.w.sent[c.rank].Add(int64(8*len(m.f) + 4*len(m.i)))
	c.w.chans[c.rank][dst] <- m
}

func (c *Comm) recvMsg(src, tag int) message {
	m := <-c.w.chans[src][c.rank]
	if m.tag != tag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d", c.rank, tag, src, m.tag))
	}
	return m
}

// Barrier blocks until every rank has entered it (dissemination
// algorithm, ceil(log2 P) zero-byte rounds).
func (c *Comm) Barrier() {
	p := c.w.p
	for dist := 1; dist < p; dist *= 2 {
		dst := (c.rank + dist) % p
		src := (c.rank - dist + p) % p
		c.sendMsg(dst, message{tag: tagBarrier, meta: dist})
		m := c.recvMsg(src, tagBarrier)
		if m.meta != dist {
			panic("mpi: barrier round mismatch")
		}
	}
}

// Bcast distributes root's data to every rank through a binomial tree
// and returns the received slice (root returns data unchanged).
func (c *Comm) Bcast(root int, data []float64) []float64 {
	p := c.w.p
	if p == 1 {
		return data
	}
	// Work in a rotated rank space where root is 0.
	vr := (c.rank - root + p) % p
	if vr != 0 {
		src := findBcastParent(vr, p)
		data = c.recvMsg((src+root)%p, tagBcast).f
	}
	for dist := nextPow2(p); dist >= 1; dist /= 2 {
		if vr%(2*dist) == 0 && vr+dist < p {
			dst := (vr + dist + root) % p
			c.sendMsg(dst, message{tag: tagBcast, f: append([]float64(nil), data...)})
		}
	}
	return data
}

// findBcastParent returns the virtual rank that sends to vr in the
// binomial broadcast.
func findBcastParent(vr, p int) int {
	for dist := 1; dist < p; dist *= 2 {
		if vr%(2*dist) == dist {
			return vr - dist
		}
	}
	panic("mpi: unreachable bcast parent")
}

func nextPow2(p int) int {
	d := 1
	for d*2 < p {
		d *= 2
	}
	return d
}

// ReduceSum sums data across ranks element-wise at root. Non-roots send
// their contribution directly to root; root accumulates in ascending
// rank order so the result is deterministic. Returns the sum at root and
// nil elsewhere.
func (c *Comm) ReduceSum(root int, data []float64) []float64 {
	if c.rank != root {
		c.sendMsg(root, message{tag: tagReduce, f: append([]float64(nil), data...)})
		return nil
	}
	acc := append([]float64(nil), data...)
	for r := 0; r < c.w.p; r++ {
		if r == root {
			continue
		}
		m := c.recvMsg(r, tagReduce)
		if len(m.f) != len(acc) {
			panic("mpi: ReduceSum length mismatch")
		}
		for i, v := range m.f {
			acc[i] += v
		}
	}
	return acc
}

// AllReduceSum sums data element-wise across all ranks; every rank
// receives the bitwise-identical result (reduce to rank 0, then
// broadcast).
func (c *Comm) AllReduceSum(data []float64) []float64 {
	acc := c.ReduceSum(0, data)
	if c.rank != 0 {
		acc = nil
	}
	if acc == nil {
		acc = make([]float64, len(data))
	}
	return c.Bcast(0, acc)
}

// AllReduceScalar is AllReduceSum for a single value.
func (c *Comm) AllReduceScalar(v float64) float64 {
	return c.AllReduceSum([]float64{v})[0]
}

// AllGatherV exchanges each rank's (variable-length) slice with every
// other rank directly; the result is indexed by rank. Total traffic is
// P·(P−1)·m, the information-theoretic volume of an allgather.
func (c *Comm) AllGatherV(local []float64) [][]float64 {
	p := c.w.p
	out := make([][]float64, p)
	out[c.rank] = append([]float64(nil), local...)
	for off := 1; off < p; off++ {
		dst := (c.rank + off) % p
		c.sendMsg(dst, message{tag: tagGather, f: append([]float64(nil), local...), meta: c.rank})
	}
	for off := 1; off < p; off++ {
		src := (c.rank - off + p) % p
		m := c.recvMsg(src, tagGather)
		out[m.meta] = m.f
	}
	return out
}

// AllGatherInt32s is AllGatherV for int32 payloads (partition setup).
func (c *Comm) AllGatherInt32s(local []int32) [][]int32 {
	p := c.w.p
	out := make([][]int32, p)
	out[c.rank] = append([]int32(nil), local...)
	for off := 1; off < p; off++ {
		dst := (c.rank + off) % p
		c.sendMsg(dst, message{tag: tagGather, i: append([]int32(nil), local...), meta: c.rank})
	}
	for off := 1; off < p; off++ {
		src := (c.rank - off + p) % p
		m := c.recvMsg(src, tagGather)
		out[m.meta] = m.i
	}
	return out
}

// AllToAllV sends bufs[d] to rank d and returns the per-source received
// slices. bufs[c.Rank()] is delivered locally without counting traffic.
// Nil buffers are sent as empty slices.
func (c *Comm) AllToAllV(bufs [][]float64) [][]float64 {
	p := c.w.p
	if len(bufs) != p {
		panic("mpi: AllToAllV needs one buffer per rank")
	}
	out := make([][]float64, p)
	out[c.rank] = append([]float64(nil), bufs[c.rank]...)
	for off := 1; off < p; off++ {
		dst := (c.rank + off) % p
		c.sendMsg(dst, message{tag: tagExchange, f: append([]float64(nil), bufs[dst]...), meta: c.rank})
	}
	for off := 1; off < p; off++ {
		src := (c.rank - off + p) % p
		m := c.recvMsg(src, tagExchange)
		out[m.meta] = m.f
	}
	return out
}

// AllToAllInt32s is AllToAllV for int32 payloads.
func (c *Comm) AllToAllInt32s(bufs [][]int32) [][]int32 {
	p := c.w.p
	if len(bufs) != p {
		panic("mpi: AllToAllInt32s needs one buffer per rank")
	}
	out := make([][]int32, p)
	out[c.rank] = append([]int32(nil), bufs[c.rank]...)
	for off := 1; off < p; off++ {
		dst := (c.rank + off) % p
		c.sendMsg(dst, message{tag: tagExchange, i: append([]int32(nil), bufs[dst]...), meta: c.rank})
	}
	for off := 1; off < p; off++ {
		src := (c.rank - off + p) % p
		m := c.recvMsg(src, tagExchange)
		out[m.meta] = m.i
	}
	return out
}
