package mpi

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPOptions tune a multi-process TCP world. The zero value selects the
// documented defaults.
type TCPOptions struct {
	// DialTimeout bounds the whole mesh setup: every dial (with
	// connection-refused retries while peers are still binding), every
	// handshake, and every accept must complete within it. Default 30s.
	DialTimeout time.Duration
	// Timeout bounds a single blocking receive and a single coalesced
	// write: a peer that produces no frame for this long is treated as
	// dead and the world fails with ErrTimeout instead of hanging.
	// Default 2m; negative disables the deadline entirely.
	Timeout time.Duration
	// Listener, when non-nil, is the pre-bound listener for this rank's
	// address (peers[rank] is then ignored for binding). It lets a
	// parent process bind all addresses race-free before spawning the
	// rank processes, and lets tests use ephemeral ports. The world
	// takes ownership and closes it after mesh setup.
	Listener net.Listener
	// MaxFrame caps the accepted wire-frame length in bytes; larger (or
	// corrupt) length prefixes fail with ErrBadFrame. Default 1 GiB.
	MaxFrame int
	// Heartbeat is the idle-heartbeat interval: each peer writer emits
	// a zero-payload heartbeat frame at this cadence, and a reader that
	// sees no frame (data or heartbeat) for 4 intervals declares the
	// peer dead with ErrPeerDied — far sooner than the OS TCP timeout
	// for a silently vanished host. Default 15s; negative disables
	// both sides. All ranks of a world must use the same setting.
	Heartbeat time.Duration
	// Faults, when non-nil, wraps this rank's transport in a
	// FaultyTransport during RunContext (deterministic chaos testing).
	Faults *FaultConfig
}

// defaultHeartbeat is the idle-heartbeat interval when unset; the
// liveness window is heartbeatWindowFactor intervals.
const (
	defaultHeartbeat      = 15 * time.Second
	heartbeatWindowFactor = 4
)

// heartbeatInterval resolves the configured heartbeat cadence (0 when
// disabled).
func (o TCPOptions) heartbeatInterval() time.Duration {
	switch {
	case o.Heartbeat < 0:
		return 0
	case o.Heartbeat == 0:
		return defaultHeartbeat
	}
	return o.Heartbeat
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.DialTimeout == 0 {
		o.DialTimeout = 30 * time.Second
	}
	if o.Timeout == 0 {
		o.Timeout = 2 * time.Minute
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = defaultMaxFrame
	}
	return o
}

// tcpPeer is one persistent peer connection: a reader goroutine decodes
// frames into inbox, a writer goroutine drains sendq with coalescing.
type tcpPeer struct {
	rank    int
	conn    net.Conn
	br      *bufio.Reader
	sendq   chan message
	inbox   chan message
	wdone   chan struct{} // closed when the writer loop exits
	readErr error         // set before inbox is closed on failure
}

// TCPWorld is one OS process's rank endpoint in a multi-process world:
// a full mesh of persistent TCP connections carrying length-prefixed
// binary frames. It implements Runner, so internal/dist drivers run
// unchanged on it; the collective algorithms and their fixed-rank-order
// reductions live in Comm and are shared with the simulated World, so
// fit trajectories are bitwise identical between the two transports.
type TCPWorld struct {
	rankID int
	p      int
	opt    TCPOptions

	peers []*tcpPeer   // indexed by rank; nil at rankID
	self  chan message // loopback for self-sends

	done     chan struct{}
	failOnce sync.Once
	cause    error // set before done is closed

	closed    atomic.Bool
	closeOnce sync.Once

	payload atomic.Int64 // accounting bytes (8/float64, 4/int32)
	wire    atomic.Int64 // bytes actually written, headers included

	readers sync.WaitGroup
}

var _ Runner = (*TCPWorld)(nil)
var _ transport = (*TCPWorld)(nil)

// ConnectTCP establishes the full connection mesh for one rank of a
// worldSize = len(peers) process group. peers[i] is the host:port at
// which rank i listens; this process listens on peers[rank] (or
// opt.Listener) and connects to every other rank, with a handshake on
// each connection carrying (protocol version, world size, both ranks)
// so mismatched launches fail with ErrHandshake instead of corrupting
// the stream. ConnectTCP must be called concurrently on all ranks; it
// returns once every connection is up.
func ConnectTCP(ctx context.Context, rank int, peers []string, opt TCPOptions) (*TCPWorld, error) {
	p := len(peers)
	if p < 1 {
		return nil, fmt.Errorf("mpi: ConnectTCP needs at least one peer address")
	}
	if rank < 0 || rank >= p {
		return nil, fmt.Errorf("mpi: rank %d out of range for %d peers", rank, p)
	}
	opt = opt.withDefaults()
	w := &TCPWorld{
		rankID: rank,
		p:      p,
		opt:    opt,
		peers:  make([]*tcpPeer, p),
		self:   make(chan message, chanDepth),
		done:   make(chan struct{}),
	}
	if p == 1 {
		if opt.Listener != nil {
			opt.Listener.Close()
		}
		return w, nil
	}

	setupCtx, cancel := context.WithTimeout(ctx, opt.DialTimeout)
	defer cancel()
	deadline, _ := setupCtx.Deadline()

	ln := opt.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", peers[rank])
		if err != nil {
			return nil, fmt.Errorf("mpi: rank %d cannot listen on %s: %w", rank, peers[rank], err)
		}
	}
	// The listener is only needed during setup: the mesh is persistent.
	defer ln.Close()
	unblock := make(chan struct{})
	defer close(unblock)
	go func() {
		// Closing the listener aborts a blocked Accept when setup times
		// out.
		select {
		case <-setupCtx.Done():
			ln.Close()
		case <-unblock:
		}
	}()

	type pend struct {
		peer *tcpPeer
		err  error
	}
	results := make(chan pend, p)

	// Ranks below us are dialed; ranks above us dial in.
	for t := 0; t < rank; t++ {
		go func(t int) {
			peer, err := w.dialPeer(setupCtx, deadline, peers[t], t)
			results <- pend{peer, err}
		}(t)
	}
	expected := p - 1 - rank
	if expected > 0 {
		go func() {
			// Exactly one pend per expected inbound peer: acceptPeer
			// retries transient mid-handshake failures internally, and
			// after a permanent error (e.g. the main loop closed the
			// listener) the remaining slots fill with fast errors — so
			// the result loop below always receives p-1 sends.
			seen := make(map[int]bool)
			for i := 0; i < expected; i++ {
				peer, err := w.acceptPeer(ln, deadline, seen)
				results <- pend{peer, err}
			}
		}()
	}

	var firstErr error
	for i := 0; i < p-1; i++ {
		r := <-results
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
				cancel()
				ln.Close()
			}
			continue
		}
		w.peers[r.peer.rank] = r.peer
	}
	if firstErr != nil {
		for _, peer := range w.peers {
			if peer != nil {
				peer.conn.Close()
			}
		}
		return nil, firstErr
	}
	for _, peer := range w.peers {
		if peer == nil {
			continue
		}
		peer.conn.SetDeadline(time.Time{})
		w.readers.Add(1)
		go w.readLoop(peer)
		go w.writeLoop(peer)
	}
	return w, nil
}

func newTCPPeer(rank int, conn net.Conn) *tcpPeer {
	return &tcpPeer{
		rank:  rank,
		conn:  conn,
		br:    bufio.NewReaderSize(conn, 64<<10),
		sendq: make(chan message, chanDepth),
		inbox: make(chan message, chanDepth),
		wdone: make(chan struct{}),
	}
}

// sleepBackoff waits for the current backoff step (doubling it toward
// a 1s cap for the next attempt) or returns the context error when the
// setup window expires first.
func sleepBackoff(ctx context.Context, backoff *time.Duration) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(*backoff):
	}
	if *backoff < time.Second {
		*backoff *= 2
	}
	return nil
}

// dialPeer connects to a lower rank with exponential backoff: dial
// failures (the peer is still binding — or being restarted by a
// supervisor) and transient mid-handshake connection losses retry
// until the setup deadline; permanent validation mismatches (protocol
// version, world size, rank identity) fail immediately.
func (w *TCPWorld) dialPeer(ctx context.Context, deadline time.Time, addr string, target int) (*tcpPeer, error) {
	var d net.Dialer
	backoff := 50 * time.Millisecond
	for {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			if sleepBackoff(ctx, &backoff) != nil {
				return nil, &Error{Rank: w.rankID, Peer: target, Op: "dial",
					Err: fmt.Errorf("%w: %s unreachable before the dial deadline (last error: %v)", ErrHandshake, addr, err)}
			}
			continue
		}
		peer := newTCPPeer(target, conn)
		conn.SetDeadline(deadline)
		herr := w.writeHandshake(conn, target)
		transient := true
		var hs []int32
		if herr == nil {
			hs, transient, herr = w.readHandshake(peer.br, target)
		}
		if herr == nil && (int(hs[2]) != target || int(hs[3]) != w.rankID) {
			transient = false
			herr = &Error{Rank: w.rankID, Peer: target, Op: "handshake",
				Err: fmt.Errorf("%w: reply names ranks (%d -> %d), want (%d -> %d)", ErrHandshake, hs[2], hs[3], target, w.rankID)}
		}
		if herr == nil {
			return peer, nil
		}
		conn.Close()
		if !transient {
			return nil, herr
		}
		if sleepBackoff(ctx, &backoff) != nil {
			return nil, herr
		}
	}
}

// acceptPeer accepts one inbound connection from a higher rank and runs
// the server side of the handshake. Transient failures — a dialer that
// died mid-handshake and will be redialed — keep accepting; listener
// errors and validation mismatches are permanent.
func (w *TCPWorld) acceptPeer(ln net.Listener, deadline time.Time, seen map[int]bool) (*tcpPeer, error) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return nil, &Error{Rank: w.rankID, Peer: -1, Op: "accept",
				Err: fmt.Errorf("%w: %v", ErrHandshake, err)}
		}
		conn.SetDeadline(deadline)
		br := bufio.NewReaderSize(conn, 64<<10)
		hs, transient, err := w.readHandshake(br, -1)
		if err != nil {
			conn.Close()
			if transient {
				continue
			}
			return nil, err
		}
		from := int(hs[2])
		switch {
		case int(hs[3]) != w.rankID:
			err = fmt.Errorf("%w: dialer targeted rank %d, this is rank %d", ErrHandshake, hs[3], w.rankID)
		case from <= w.rankID || from >= w.p:
			err = fmt.Errorf("%w: unexpected dialer rank %d (acceptor %d of %d)", ErrHandshake, from, w.rankID, w.p)
		case seen[from]:
			err = fmt.Errorf("%w: duplicate connection from rank %d", ErrHandshake, from)
		}
		if err != nil {
			conn.Close()
			return nil, &Error{Rank: w.rankID, Peer: from, Op: "handshake", Err: err}
		}
		peer := newTCPPeer(from, conn)
		peer.br = br
		if err := w.writeHandshake(conn, from); err != nil {
			// The dialer vanished between its handshake and our reply;
			// it (or its restarted replacement) will dial again.
			conn.Close()
			continue
		}
		seen[from] = true
		return peer, nil
	}
}

// writeHandshake sends (version, worldSize, ownRank, peerRank).
func (w *TCPWorld) writeHandshake(conn net.Conn, peer int) error {
	m := message{i: []int32{ProtocolVersion, int32(w.p), int32(w.rankID), int32(peer)}}
	buf := appendFrame(nil, frameHandshake, &m)
	n, err := conn.Write(buf)
	w.wire.Add(int64(n))
	if err != nil {
		return &Error{Rank: w.rankID, Peer: peer, Op: "handshake",
			Err: fmt.Errorf("%w: %v", ErrHandshake, err)}
	}
	return nil
}

// readHandshake reads and validates the version and world-size fields;
// rank fields are validated by the caller (which knows its role). The
// second return distinguishes transient failures — the connection
// broke before a complete handshake arrived, so the peer may simply
// have died mid-setup and be about to retry — from permanent protocol
// mismatches that no retry can fix.
func (w *TCPWorld) readHandshake(br *bufio.Reader, peer int) ([]int32, bool, error) {
	fr, _, err := readFrame(br, w.opt.MaxFrame)
	if err != nil {
		return nil, true, &Error{Rank: w.rankID, Peer: peer, Op: "handshake",
			Err: fmt.Errorf("%w: %v", ErrHandshake, err)}
	}
	if fr.kind != frameHandshake || len(fr.msg.i) != 4 {
		return nil, false, &Error{Rank: w.rankID, Peer: peer, Op: "handshake",
			Err: fmt.Errorf("%w: first frame is not a handshake", ErrHandshake)}
	}
	hs := fr.msg.i
	if hs[0] != ProtocolVersion {
		return nil, false, &Error{Rank: w.rankID, Peer: peer, Op: "handshake",
			Err: fmt.Errorf("%w: protocol version %d, want %d", ErrHandshake, hs[0], ProtocolVersion)}
	}
	if int(hs[1]) != w.p {
		return nil, false, &Error{Rank: w.rankID, Peer: peer, Op: "handshake",
			Err: fmt.Errorf("%w: peer launched with world size %d, this rank with %d", ErrHandshake, hs[1], w.p)}
	}
	return hs, false, nil
}

// Rank returns this process's rank id.
func (w *TCPWorld) Rank() int { return w.rankID }

// Size returns the number of ranks in the world.
func (w *TCPWorld) Size() int { return w.p }

// BytesSent returns the payload bytes this rank has sent — the same
// accounting the simulated World keeps (8 per float64, 4 per int32,
// self-sends and headers free).
func (w *TCPWorld) BytesSent() int64 { return w.payload.Load() }

// WireBytes returns the bytes actually written to the sockets,
// including frame headers and the connection handshakes.
func (w *TCPWorld) WireBytes() int64 { return w.wire.Load() }

// transport implementation.
func (w *TCPWorld) rank() int        { return w.rankID }
func (w *TCPWorld) size() int        { return w.p }
func (w *TCPWorld) bytesSent() int64 { return w.payload.Load() }
func (w *TCPWorld) wireSent() int64  { return w.wire.Load() }

func (w *TCPWorld) fail(err error) {
	w.failOnce.Do(func() {
		w.cause = err
		close(w.done)
	})
}

func (w *TCPWorld) send(dst int, m message) {
	if dst == w.rankID {
		select {
		case w.self <- m:
			return
		case <-w.done:
			panic(&Error{Rank: w.rankID, Peer: dst, Op: "send", Err: ErrAborted})
		}
	}
	w.payload.Add(m.payloadBytes())
	select {
	case w.peers[dst].sendq <- m:
	case <-w.done:
		panic(&Error{Rank: w.rankID, Peer: dst, Op: "send", Err: ErrAborted})
	}
}

func (w *TCPWorld) recv(src int) message {
	inbox := w.self
	var peer *tcpPeer
	if src != w.rankID {
		peer = w.peers[src]
		inbox = peer.inbox
	}
	var timeout <-chan time.Time
	if w.opt.Timeout > 0 {
		t := time.NewTimer(w.opt.Timeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case m, ok := <-inbox:
		if !ok {
			var err error = ErrPeerClosed
			if peer != nil && peer.readErr != nil {
				err = peer.readErr
			}
			w.fail(err)
			panic(&Error{Rank: w.rankID, Peer: src, Op: "recv", Err: err})
		}
		return m
	case <-w.done:
		panic(&Error{Rank: w.rankID, Peer: src, Op: "recv", Err: ErrAborted})
	case <-timeout:
		err := &Error{Rank: w.rankID, Peer: src, Op: "recv",
			Err: fmt.Errorf("%w: no frame from rank %d within %v", ErrTimeout, src, w.opt.Timeout)}
		w.fail(err)
		panic(err)
	}
}

// readLoop decodes frames from one peer into its inbox until a clean
// bye frame, a failure, or local shutdown. A connection error before
// the bye means the peer died: the whole local world is failed so every
// blocked operation surfaces the error instead of hanging. With
// heartbeats enabled, a peer that produces no frame at all for several
// intervals is declared dead the same way — well before the OS TCP
// keepalive would notice a silently vanished host.
func (w *TCPWorld) readLoop(p *tcpPeer) {
	defer w.readers.Done()
	var window time.Duration
	if iv := w.opt.heartbeatInterval(); iv > 0 {
		window = heartbeatWindowFactor * iv
	}
	for {
		if window > 0 {
			p.conn.SetReadDeadline(time.Now().Add(window))
		}
		fr, _, err := readFrame(p.br, w.opt.MaxFrame)
		if err != nil {
			if !w.closed.Load() {
				cause := fmt.Errorf("%w: %v", ErrPeerDied, err)
				var ne net.Error
				switch {
				case errors.As(err, &ne) && ne.Timeout():
					cause = fmt.Errorf("%w: rank %d silent for %v (no data or heartbeat frames)",
						ErrPeerDied, p.rank, window)
				case errors.Is(err, ErrBadFrame):
					// Corruption is its own root cause: a peer that sent a
					// malformed frame is not the same failure as one that
					// vanished, and diagnosis depends on the distinction.
					cause = err
				}
				werr := &Error{Rank: w.rankID, Peer: p.rank, Op: "recv", Err: cause}
				p.readErr = werr
				w.fail(werr)
			}
			close(p.inbox)
			return
		}
		switch fr.kind {
		case frameBye:
			close(p.inbox)
			return
		case frameHeartbeat:
			// Liveness only; resets the read deadline and is dropped.
		case frameFloat64, frameInt32:
			select {
			case p.inbox <- fr.msg:
			case <-w.done:
				close(p.inbox)
				return
			}
		default:
			werr := &Error{Rank: w.rankID, Peer: p.rank, Op: "recv",
				Err: fmt.Errorf("%w: unexpected frame kind %d after setup", ErrBadFrame, fr.kind)}
			p.readErr = werr
			w.fail(werr)
			close(p.inbox)
			return
		}
	}
}

// maxCoalesce bounds how many bytes the writer batches into one socket
// write before flushing.
const maxCoalesce = 256 << 10

// writeLoop drains the peer's send queue, coalescing every message
// already queued into a single socket write, and finishes with a bye
// frame when the queue is closed (graceful shutdown). While the queue
// is idle it emits heartbeat frames at the configured cadence so the
// peer's reader can distinguish "alive but quiet" from "gone".
func (w *TCPWorld) writeLoop(p *tcpPeer) {
	defer close(p.wdone)
	buf := make([]byte, 0, 64<<10)
	var hb <-chan time.Time
	if iv := w.opt.heartbeatInterval(); iv > 0 {
		t := time.NewTicker(iv)
		defer t.Stop()
		hb = t.C
	}
	for {
		var m message
		var ok bool
		select {
		case m, ok = <-p.sendq:
		case <-hb:
			if !w.writeAll(p, appendFrame(buf[:0], frameHeartbeat, &message{})) {
				return
			}
			continue
		}
		if !ok {
			break
		}
		buf = appendFrame(buf[:0], payloadKind(&m), &m)
		drained := false
		for len(buf) < maxCoalesce && !drained {
			select {
			case m2, ok2 := <-p.sendq:
				if !ok2 {
					drained = true
					break
				}
				buf = appendFrame(buf, payloadKind(&m2), &m2)
			default:
				drained = true
			}
		}
		if !w.writeAll(p, buf) {
			return
		}
		select {
		case <-w.done:
			// Failed worlds tear down abruptly; no bye.
			return
		default:
		}
	}
	w.writeAll(p, appendFrame(buf[:0], frameBye, &message{}))
}

func payloadKind(m *message) byte {
	if m.i != nil {
		return frameInt32
	}
	return frameFloat64
}

// writeAll writes one coalesced batch with a deadline, counting wire
// bytes; a failure fails the world unless it is already shutting down.
func (w *TCPWorld) writeAll(p *tcpPeer, buf []byte) bool {
	if w.opt.Timeout > 0 {
		p.conn.SetWriteDeadline(time.Now().Add(w.opt.Timeout))
	}
	n, err := p.conn.Write(buf)
	w.wire.Add(int64(n))
	if err != nil {
		if !w.closed.Load() {
			w.fail(&Error{Rank: w.rankID, Peer: p.rank, Op: "send",
				Err: fmt.Errorf("%w: %v", ErrPeerDied, err)})
		}
		return false
	}
	return true
}

// Close tears the mesh down. On a clean world it flushes every send
// queue, sends bye frames, and waits briefly for the writers; after a
// failure it closes the connections immediately so peers see the death
// promptly. Close is idempotent; Run/RunContext call it automatically.
func (w *TCPWorld) Close() error {
	w.closeOnce.Do(func() {
		w.closed.Store(true)
		graceful := true
		select {
		case <-w.done:
			graceful = false
		default:
		}
		for _, p := range w.peers {
			if p != nil {
				close(p.sendq)
			}
		}
		if graceful {
			wait := w.opt.Timeout
			if wait <= 0 || wait > 5*time.Second {
				wait = 5 * time.Second
			}
			deadline := time.After(wait)
			for _, p := range w.peers {
				if p == nil {
					continue
				}
				select {
				case <-p.wdone:
				case <-deadline:
				}
			}
		}
		for _, p := range w.peers {
			if p != nil {
				p.conn.Close()
			}
		}
		w.readers.Wait()
	})
	return nil
}

// Run executes body for this process's rank. It is RunContext with a
// background context.
func (w *TCPWorld) Run(body func(c *Comm)) error {
	return w.RunContext(context.Background(), body)
}

// RunContext executes body for this process's rank (the other ranks run
// the same body in their own processes), then performs a closing
// barrier and shuts the mesh down. A panic in body — including the
// typed transport failures for dead peers and timeouts — is recovered
// into the returned error naming this rank; cancelling ctx aborts a
// blocked rank the same way. The world cannot be reused after
// RunContext returns.
func (w *TCPWorld) RunContext(ctx context.Context, body func(c *Comm)) error {
	bodyDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			w.fail(&Error{Rank: w.rankID, Peer: -1, Op: "run", Err: ctx.Err()})
		case <-bodyDone:
		}
	}()
	var err error
	func() {
		defer func() {
			if e := recover(); e != nil {
				err = recoveredError(w.rankID, e)
			}
		}()
		var t transport = w
		if w.opt.Faults != nil {
			t = newFaultyTransport(t, *w.opt.Faults)
		}
		c := &Comm{t: t}
		body(c)
		// The closing barrier keeps any rank from tearing the mesh down
		// while a peer is still mid-collective.
		c.Barrier()
	}()
	close(bodyDone)
	if err != nil && errors.Is(err, ErrAborted) && w.cause != nil && !errors.Is(w.cause, ErrAborted) {
		err = w.cause
	}
	w.Close()
	return err
}
