package mpi

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// listenLoopback binds p ephemeral-port listeners so the test can hand
// every rank a pre-bound listener — the same race-free scheme the
// `-dist spawn` launcher uses.
func listenLoopback(t *testing.T, p int) ([]net.Listener, []string) {
	t.Helper()
	lns := make([]net.Listener, p)
	addrs := make([]string, p)
	for r := 0; r < p; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[r] = ln
		addrs[r] = ln.Addr().String()
	}
	return lns, addrs
}

// connectLoopback stands up a full p-rank TCP mesh over loopback, one
// TCPWorld per simulated process, connected concurrently as ConnectTCP
// requires.
func connectLoopback(t *testing.T, p int, opt TCPOptions) []*TCPWorld {
	t.Helper()
	lns, addrs := listenLoopback(t, p)
	worlds := make([]*TCPWorld, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for r := 0; r < p; r++ {
		go func(r int) {
			defer wg.Done()
			o := opt
			o.Listener = lns[r]
			worlds[r], errs[r] = ConnectTCP(context.Background(), r, addrs, o)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d connect: %v", r, err)
		}
	}
	return worlds
}

// runAll executes body on every world concurrently (each TCPWorld is one
// rank) and returns the per-rank Run errors.
func runAll(worlds []*TCPWorld, body func(c *Comm)) []error {
	errs := make([]error, len(worlds))
	var wg sync.WaitGroup
	wg.Add(len(worlds))
	for r, w := range worlds {
		go func(r int, w *TCPWorld) {
			defer wg.Done()
			errs[r] = w.Run(body)
		}(r, w)
	}
	wg.Wait()
	return errs
}

func TestTCPCollectives(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4} {
		worlds := connectLoopback(t, p, TCPOptions{Timeout: 10 * time.Second})
		errs := runAll(worlds, func(c *Comm) {
			// Point-to-point ring with both payload types.
			next, prev := (c.Rank()+1)%p, (c.Rank()-1+p)%p
			c.Send(next, 1, []float64{float64(c.Rank()), 0.5})
			c.SendInt32s(next, 2, []int32{int32(c.Rank())})
			if got := c.Recv(prev, 1); got[0] != float64(prev) || got[1] != 0.5 {
				panic("ring float payload wrong")
			}
			if got := c.RecvInt32s(prev, 2); got[0] != int32(prev) {
				panic("ring int32 payload wrong")
			}

			c.Barrier()
			b := c.Bcast(0, map[bool][]float64{true: {7, 8, 9}, false: nil}[c.Rank() == 0])
			if len(b) != 3 || b[2] != 9 {
				panic("bcast wrong")
			}
			sum := c.AllReduceScalar(float64(c.Rank() + 1))
			if sum != float64(p*(p+1))/2 {
				panic("allreduce wrong")
			}
			all := c.AllGatherV(make([]float64, c.Rank()+1))
			for r := 0; r < p; r++ {
				if len(all[r]) != r+1 {
					panic("allgather wrong")
				}
			}
			bufs := make([][]float64, p)
			for d := range bufs {
				bufs[d] = []float64{float64(c.Rank()*10 + d)}
			}
			got := c.AllToAllV(bufs)
			for s := 0; s < p; s++ {
				if got[s][0] != float64(s*10+c.Rank()) {
					panic("alltoall wrong")
				}
			}
		})
		for r, err := range errs {
			if err != nil {
				t.Fatalf("p=%d rank %d: %v", p, r, err)
			}
		}
	}
}

// TestTCPBytesMatchSimulated checks the transport-invariant accounting
// contract: the same rank program reports identical BytesSent on the
// channel fabric and on TCP, while TCP's wire counter exceeds payload
// (headers + handshakes).
func TestTCPBytesMatchSimulated(t *testing.T) {
	const p = 4
	body := func(c *Comm) {
		c.Barrier()
		c.Bcast(1, []float64{1, 2, 3})
		c.AllReduceSum([]float64{float64(c.Rank())})
		c.AllGatherInt32s([]int32{int32(c.Rank()), 7})
		c.AllToAllV([][]float64{{1}, {2, 2}, {}, {4}})
		c.Send((c.Rank()+1)%p, 0, make([]float64, 100))
		c.Recv((c.Rank()-1+p)%p, 0)
	}

	sim := NewWorld(p)
	if err := sim.Run(body); err != nil {
		t.Fatal(err)
	}
	simBytes := sim.SnapshotBytes()

	worlds := connectLoopback(t, p, TCPOptions{Timeout: 10 * time.Second})
	for r, err := range runAll(worlds, body) {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r, w := range worlds {
		if w.BytesSent() != simBytes[r] {
			t.Errorf("rank %d: TCP counted %d payload bytes, simulated %d", r, w.BytesSent(), simBytes[r])
		}
		if w.WireBytes() <= w.BytesSent() {
			t.Errorf("rank %d: wire bytes %d not above payload bytes %d", r, w.WireBytes(), w.BytesSent())
		}
	}
}

// TestTCPDeadPeerFailsEveryRank is the no-hang contract: when one rank
// dies mid-collective, every other rank's Run returns a typed error
// instead of blocking forever.
func TestTCPDeadPeerFailsEveryRank(t *testing.T) {
	const p = 4
	worlds := connectLoopback(t, p, TCPOptions{Timeout: 30 * time.Second})
	start := time.Now()
	errs := runAll(worlds, func(c *Comm) {
		if c.Rank() == 2 {
			panic("rank 2 dies") // Run recovers, closes the mesh abruptly
		}
		c.Barrier()
		c.AllReduceScalar(1)
	})
	if errs[2] == nil || !strings.Contains(errs[2].Error(), "rank 2 dies") {
		t.Fatalf("dying rank error: %v", errs[2])
	}
	for r := 0; r < p; r++ {
		if r == 2 {
			continue
		}
		if errs[r] == nil {
			t.Fatalf("rank %d did not observe the death", r)
		}
		var te *Error
		if !errors.As(errs[r], &te) {
			t.Fatalf("rank %d error is untyped: %v", r, errs[r])
		}
		if !errors.Is(errs[r], ErrPeerDied) && !errors.Is(errs[r], ErrPeerClosed) && !errors.Is(errs[r], ErrAborted) {
			t.Fatalf("rank %d error lacks a death sentinel: %v", r, errs[r])
		}
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("death took %v to propagate — ranks were hanging", elapsed)
	}
}

func TestTCPRecvTimeout(t *testing.T) {
	const p = 2
	worlds := connectLoopback(t, p, TCPOptions{Timeout: 200 * time.Millisecond})
	errs := runAll(worlds, func(c *Comm) {
		c.Recv((c.Rank()+1)%p, 5) // nobody ever sends
	})
	if !errors.Is(errs[0], ErrTimeout) && !errors.Is(errs[0], ErrPeerDied) {
		t.Fatalf("rank 0: want ErrTimeout (or cascade), got %v", errs[0])
	}
	if errs[1] == nil {
		t.Fatal("rank 1 returned nil from a timed-out world")
	}
}

func TestTCPContextCancelAborts(t *testing.T) {
	const p = 2
	worlds := connectLoopback(t, p, TCPOptions{Timeout: -1})
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for r, w := range worlds {
		go func(r int, w *TCPWorld) {
			defer wg.Done()
			errs[r] = w.RunContext(ctx, func(c *Comm) {
				c.Recv((c.Rank()+1)%p, 9) // mutual deadlock: nobody sends
			})
		}(r, w)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		if errs[r] == nil {
			t.Fatalf("rank %d returned nil from a deadlocked world", r)
		}
		if !errors.Is(errs[r], context.DeadlineExceeded) && !errors.Is(errs[r], ErrAborted) &&
			!errors.Is(errs[r], ErrPeerDied) && !errors.Is(errs[r], ErrPeerClosed) {
			t.Fatalf("rank %d: unexpected error %v", r, errs[r])
		}
	}
}

func TestTCPHandshakeWorldSizeMismatch(t *testing.T) {
	lns, addrs := listenLoopback(t, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		// Rank 0 thinks the world has 2 ranks...
		w, err := ConnectTCP(context.Background(), 0, addrs, TCPOptions{Listener: lns[0], DialTimeout: 5 * time.Second})
		if w != nil {
			w.Close()
		}
		errs[0] = err
	}()
	go func() {
		defer wg.Done()
		// ...rank 1 was launched believing there are 3.
		w, err := ConnectTCP(context.Background(), 1, append(addrs, "127.0.0.1:1"), TCPOptions{Listener: lns[1], DialTimeout: 5 * time.Second})
		if w != nil {
			w.Close()
		}
		errs[1] = err
	}()
	wg.Wait()
	if !errors.Is(errs[0], ErrHandshake) && !errors.Is(errs[1], ErrHandshake) {
		t.Fatalf("no rank saw ErrHandshake: %v / %v", errs[0], errs[1])
	}
}

func TestTCPSingleRankWorld(t *testing.T) {
	w, err := ConnectTCP(context.Background(), 0, []string{"127.0.0.1:0"}, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) {
		c.Barrier()
		if got := c.AllReduceScalar(3); got != 3 {
			panic("p=1 allreduce wrong")
		}
		c.Send(0, 1, []float64{11})
		if got := c.Recv(0, 1); got[0] != 11 {
			panic("p=1 self-send lost")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.BytesSent() != 0 {
		t.Fatalf("self-sends counted %d bytes", w.BytesSent())
	}
}

// TestTCPNoGoroutineLeak runs a clean mesh plus a failing mesh and
// checks the fabric goroutines (readers, writers, watchers) are all gone
// afterwards.
func TestTCPNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		worlds := connectLoopback(t, 3, TCPOptions{Timeout: 5 * time.Second})
		runAll(worlds, func(c *Comm) {
			c.Barrier()
			if i == 1 && c.Rank() == 0 {
				panic("induced failure")
			}
			c.AllReduceScalar(1)
		})
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutines leaked: before=%d after=%d\n%s", before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}
