package mpi

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func framesEqual(a, b frame) bool {
	if a.kind != b.kind || a.msg.tag != b.msg.tag || a.msg.meta != b.msg.meta {
		return false
	}
	if len(a.msg.f) != len(b.msg.f) || len(a.msg.i) != len(b.msg.i) {
		return false
	}
	for i := range a.msg.f {
		if math.Float64bits(a.msg.f[i]) != math.Float64bits(b.msg.f[i]) {
			return false
		}
	}
	for i := range a.msg.i {
		if a.msg.i[i] != b.msg.i[i] {
			return false
		}
	}
	return true
}

func TestFrameRoundTripFloat64(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{0},
		{1.5, -2.25, math.Inf(1), math.Inf(-1), math.NaN(), math.SmallestNonzeroFloat64, math.MaxFloat64, math.Copysign(0, -1)},
	}
	for _, f := range cases {
		m := message{tag: 12345, meta: -7, f: append([]float64(nil), f...)}
		buf := appendFrame(nil, frameFloat64, &m)
		if len(buf) != frameWireLen(&m) {
			t.Fatalf("encoded %d bytes, frameWireLen says %d", len(buf), frameWireLen(&m))
		}
		fr, n, err := decodeFrame(buf, 0)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(buf) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(buf))
		}
		want := frame{kind: frameFloat64, msg: m}
		if len(m.f) == 0 {
			want.msg.f = nil // empty payloads decode to nil, matching the simulated fabric
		}
		if !framesEqual(fr, want) {
			t.Fatalf("round trip mismatch: got %+v want %+v", fr, want)
		}
	}
}

func TestFrameRoundTripInt32(t *testing.T) {
	m := message{tag: 7, meta: math.MinInt32, i: []int32{0, -1, math.MaxInt32, math.MinInt32}}
	buf := appendFrame(nil, frameInt32, &m)
	fr, n, err := decodeFrame(buf, 0)
	if err != nil || n != len(buf) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if !framesEqual(fr, frame{kind: frameInt32, msg: m}) {
		t.Fatalf("round trip mismatch: %+v", fr)
	}
}

func TestFrameRoundTripControl(t *testing.T) {
	hs := message{i: []int32{ProtocolVersion, 4, 1, 2}}
	buf := appendFrame(nil, frameHandshake, &hs)
	buf = appendFrame(buf, frameBye, &message{})

	br := bufio.NewReader(bytes.NewReader(buf))
	fr, _, err := readFrame(br, 0)
	if err != nil || fr.kind != frameHandshake || len(fr.msg.i) != 4 {
		t.Fatalf("handshake: %+v err=%v", fr, err)
	}
	fr, _, err = readFrame(br, 0)
	if err != nil || fr.kind != frameBye {
		t.Fatalf("bye: %+v err=%v", fr, err)
	}
	if _, _, err = readFrame(br, 0); err != io.EOF {
		t.Fatalf("want clean io.EOF after last frame, got %v", err)
	}
}

// Property: encode→decode is the identity for arbitrary payloads, and
// decodeFrame/readFrame agree on every frame.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(tag uint16, meta int32, fdata []float64, idata []int32, isInt bool) bool {
		m := message{tag: int(tag)}
		m.meta = int(meta)
		kind := frameFloat64
		if isInt {
			kind = frameInt32
			m.i = idata
		} else {
			m.f = fdata
		}
		buf := appendFrame(nil, kind, &m)
		fr, n, err := decodeFrame(buf, 0)
		if err != nil || n != len(buf) {
			return false
		}
		fr2, n2, err2 := readFrame(bufio.NewReader(bytes.NewReader(buf)), 0)
		if err2 != nil || n2 != n {
			return false
		}
		want := frame{kind: byte(kind), msg: m}
		if len(m.f) == 0 {
			want.msg.f = nil
		}
		if len(m.i) == 0 {
			want.msg.i = nil
		}
		return framesEqual(fr, want) && framesEqual(fr2, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeFrameTruncated(t *testing.T) {
	m := message{tag: 3, f: []float64{1, 2, 3}}
	buf := appendFrame(nil, frameFloat64, &m)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := decodeFrame(buf[:cut], 0); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut=%d: want ErrUnexpectedEOF, got %v", cut, err)
		}
	}
}

func TestReadFrameTruncated(t *testing.T) {
	m := message{tag: 3, i: []int32{1, 2}}
	buf := appendFrame(nil, frameInt32, &m)
	for cut := 1; cut < len(buf); cut++ {
		_, _, err := readFrame(bufio.NewReader(bytes.NewReader(buf[:cut])), 0)
		if !errors.Is(err, io.ErrUnexpectedEOF) && err != io.EOF {
			t.Fatalf("cut=%d: want EOF-ish error, got %v", cut, err)
		}
		if cut >= frameLenSize && err == io.EOF {
			t.Fatalf("cut=%d inside a frame reported clean io.EOF", cut)
		}
	}
}

func TestDecodeFrameMalformed(t *testing.T) {
	enc := func(length uint32, kind byte, payload int) []byte {
		var b []byte
		b = append(b, byte(length), byte(length>>8), byte(length>>16), byte(length>>24))
		b = append(b, kind, 0, 0, 0, 0, 0, 0, 0, 0)
		return append(b, make([]byte, payload)...)
	}
	cases := []struct {
		name string
		b    []byte
	}{
		{"length below header", enc(frameHeaderLen-1, frameFloat64, 0)},
		{"unknown kind", enc(frameHeaderLen, 99, 0)},
		{"float64 not multiple of 8", enc(frameHeaderLen+4, frameFloat64, 4)},
		{"int32 not multiple of 4", enc(frameHeaderLen+3, frameInt32, 3)},
		{"bye with payload", enc(frameHeaderLen+4, frameBye, 4)},
		{"oversized", enc(1<<28, frameFloat64, 16)},
	}
	for _, tc := range cases {
		if _, _, err := decodeFrame(tc.b, 1<<20); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: want ErrBadFrame, got %v", tc.name, err)
		}
		_, _, err := readFrame(bufio.NewReader(bytes.NewReader(tc.b)), 1<<20)
		if !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s (stream): want ErrBadFrame, got %v", tc.name, err)
		}
	}
}

// FuzzFrameDecode asserts the wire-decoder contract: arbitrary input
// must produce a typed error or a valid frame — never a panic — and a
// successfully decoded frame must re-encode to the bytes it consumed.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendFrame(nil, frameFloat64, &message{tag: 1, f: []float64{1.5, -2}}))
	f.Add(appendFrame(nil, frameInt32, &message{tag: 2, meta: -3, i: []int32{7}}))
	f.Add(appendFrame(nil, frameHandshake, &message{i: []int32{ProtocolVersion, 4, 0, 1}}))
	f.Add(appendFrame(nil, frameBye, &message{}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxFrame = 1 << 20
		fr, n, err := decodeFrame(data, maxFrame)
		fr2, n2, err2 := readFrame(bufio.NewReader(bytes.NewReader(data)), maxFrame)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("decodeFrame err=%v but readFrame err=%v", err, err2)
		}
		if err != nil {
			if !errors.Is(err, ErrBadFrame) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if n != n2 || !framesEqual(fr, fr2) {
			t.Fatalf("decodeFrame and readFrame disagree: (%d,%+v) vs (%d,%+v)", n, fr, n2, fr2)
		}
		if n < frameLenSize+frameHeaderLen || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := appendFrame(nil, fr.kind, &fr.msg)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, data[:n])
		}
	})
}
