package mpi

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// nopTransport is an inert endpoint for exercising FaultyTransport's
// schedule in isolation.
type nopTransport struct{ r, p int }

func (t nopTransport) rank() int         { return t.r }
func (t nopTransport) size() int         { return t.p }
func (t nopTransport) send(int, message) {}
func (t nopTransport) recv(int) message  { return message{} }
func (t nopTransport) bytesSent() int64  { return 0 }
func (t nopTransport) wireSent() int64   { return 0 }

// faultOp drives ops through a FaultyTransport until the first injected
// fault and reports (op index, error); 0 means no fault within limit.
func faultOp(cfg FaultConfig, rank, limit int) (op int, err *Error) {
	f := newFaultyTransport(nopTransport{r: rank, p: 4}, cfg)
	for i := 1; i <= limit; i++ {
		broke := func() bool {
			defer func() {
				if e := recover(); e != nil {
					err = e.(*Error)
					op = i
				}
			}()
			f.send(0, message{})
			return false
		}()
		_ = broke
		if err != nil {
			return op, err
		}
	}
	return 0, nil
}

// TestFaultScheduleDeterministic: the same (seed, rank) produces the
// same fault at the same op every time; different ranks get different
// schedules.
func TestFaultScheduleDeterministic(t *testing.T) {
	cfg := FaultConfig{Seed: 11, DropProb: 0.05, CorruptProb: 0.05}
	op1, err1 := faultOp(cfg, 1, 10000)
	op2, err2 := faultOp(cfg, 1, 10000)
	if op1 == 0 {
		t.Fatal("no fault fired within 10000 ops at 10% rate")
	}
	if op1 != op2 || err1.Error() != err2.Error() {
		t.Fatalf("schedule not deterministic: op %d (%v) vs op %d (%v)", op1, err1, op2, err2)
	}
	ops := map[int]bool{}
	for r := 0; r < 4; r++ {
		op, _ := faultOp(FaultConfig{Seed: 11, DropProb: 0.05, CorruptProb: 0.05}, r, 10000)
		ops[op] = true
	}
	if len(ops) < 2 {
		t.Fatalf("all ranks faulted at the same op %v — schedules are not per-rank", ops)
	}
}

func TestFaultKillAtOpExact(t *testing.T) {
	cfg := FaultConfig{Seed: 3, KillRank: 2, KillAtOp: 7}
	op, err := faultOp(cfg, 2, 100)
	if op != 7 || !errors.Is(err, ErrPeerDied) {
		t.Fatalf("kill at op %d (%v), want op 7 with ErrPeerDied", op, err)
	}
	if op, _ := faultOp(cfg, 1, 100); op != 0 {
		t.Fatalf("non-killed rank faulted at op %d", op)
	}
}

func TestSweepHook(t *testing.T) {
	hook := FaultConfig{KillRank: 1, KillAtSweep: 3}.SweepHook()
	hook(0, 3) // other rank: no-op
	hook(1, 2) // other sweep: no-op
	defer func() {
		e := recover()
		if e == nil {
			t.Fatal("hook did not fire at (1, 3)")
		}
		te, ok := e.(*Error)
		if !ok || !errors.Is(te, ErrPeerDied) {
			t.Fatalf("hook panicked with %v, want *Error wrapping ErrPeerDied", e)
		}
	}()
	hook(1, 3)
}

// TestWorldInjectedDropAbortsCleanly: a simulated world with injected
// connection drops fails with a typed root cause (not a bare abort) and
// never hangs.
func TestWorldInjectedDropAbortsCleanly(t *testing.T) {
	w := NewWorld(4)
	w.InjectFaults(FaultConfig{Seed: 5, DropProb: 0.02})
	err := w.Run(func(c *Comm) {
		for i := 0; i < 200; i++ {
			c.AllReduceScalar(float64(i))
		}
	})
	if err == nil {
		t.Fatal("no error from a 2% drop rate over 200 allreduces")
	}
	if !errors.Is(err, ErrPeerDied) {
		t.Fatalf("root cause is %v, want the injected ErrPeerDied", err)
	}
	if !strings.Contains(err.Error(), "injected") {
		t.Fatalf("error does not identify itself as injected: %v", err)
	}
}

// TestWorldInjectedDelayPreservesResults: pure delay injection slows a
// world down but never changes collective results.
func TestWorldInjectedDelayPreservesResults(t *testing.T) {
	w := NewWorld(4)
	w.InjectFaults(FaultConfig{Seed: 5, DelayProb: 0.3, Delay: time.Millisecond})
	err := w.Run(func(c *Comm) {
		for i := 0; i < 20; i++ {
			if got := c.AllReduceScalar(1); got != 4 {
				panic("delayed allreduce returned wrong sum")
			}
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatalf("delay-only faults broke the run: %v", err)
	}
}

// checkGoroutineBaseline polls until the goroutine count returns to the
// pre-test baseline (the shared leak-test idiom).
func checkGoroutineBaseline(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutines leaked: before=%d after=%d\n%s", before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestTCPLeakKillMidCollective: a rank killed by fault injection in the
// middle of a collective fails every rank with typed errors and leaves
// no fabric goroutines behind.
func TestTCPLeakKillMidCollective(t *testing.T) {
	before := runtime.NumGoroutine()
	worlds := connectLoopback(t, 3, TCPOptions{
		Timeout: 10 * time.Second,
		Faults:  &FaultConfig{Seed: 1, KillRank: 1, KillAtOp: 5},
	})
	errs := runAll(worlds, func(c *Comm) {
		for i := 0; i < 50; i++ {
			c.AllReduceScalar(float64(i))
		}
	})
	if !errors.Is(errs[1], ErrPeerDied) || !strings.Contains(errs[1].Error(), "injected") {
		t.Fatalf("killed rank error: %v", errs[1])
	}
	for _, r := range []int{0, 2} {
		if errs[r] == nil {
			t.Fatalf("rank %d did not observe the injected kill", r)
		}
	}
	checkGoroutineBaseline(t, before)
}

// rawPeer dials a TCPWorld under construction and completes rank 1's
// side of the handshake by hand, so tests can then misbehave on the
// wire in ways a real TCPWorld never would.
func rawPeer(t *testing.T, addr string) net.Conn {
	t.Helper()
	var conn net.Conn
	var err error
	for i := 0; i < 100; i++ {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("raw peer dial: %v", err)
	}
	hs := message{i: []int32{ProtocolVersion, 2, 1, 0}}
	if _, err := conn.Write(appendFrame(nil, frameHandshake, &hs)); err != nil {
		t.Fatalf("raw peer handshake write: %v", err)
	}
	// Consume the handshake reply so the world finishes setup.
	reply := make([]byte, frameLenSize+frameHeaderLen+16)
	if _, err := conn.Read(reply); err != nil {
		t.Fatalf("raw peer handshake read: %v", err)
	}
	return conn
}

// connectWithRawPeer builds a p=2 world for rank 0 whose rank-1 peer is
// a hand-driven raw connection.
func connectWithRawPeer(t *testing.T, opt TCPOptions) (*TCPWorld, net.Conn) {
	t.Helper()
	lns, addrs := listenLoopback(t, 2)
	lns[1].Close() // rank 1 is played by the raw conn; it never listens
	opt.Listener = lns[0]
	var w *TCPWorld
	var connErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		w, connErr = ConnectTCP(context.Background(), 0, addrs, opt)
	}()
	conn := rawPeer(t, addrs[0])
	<-done
	if connErr != nil {
		t.Fatalf("connect: %v", connErr)
	}
	return w, conn
}

// TestTCPLeakCorruptFrame: a peer that sends a malformed frame fails
// the world with ErrBadFrame and leaves no fabric goroutines behind.
func TestTCPLeakCorruptFrame(t *testing.T) {
	before := runtime.NumGoroutine()
	w, conn := connectWithRawPeer(t, TCPOptions{Timeout: 10 * time.Second})
	defer conn.Close()
	// Unknown frame kind 0x7f with a plausible length prefix.
	garbage := []byte{9, 0, 0, 0, 0x7f, 0, 0, 0, 0, 0, 0, 0, 0}
	if _, err := conn.Write(garbage); err != nil {
		t.Fatalf("garbage write: %v", err)
	}
	err := w.Run(func(c *Comm) {
		c.Recv(1, 0)
	})
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("want ErrBadFrame, got %v", err)
	}
	checkGoroutineBaseline(t, before)
}

// TestTCPLeakHeartbeatTimeout: a silent peer (no data, no heartbeats)
// is detected by the heartbeat window well before the receive timeout,
// with ErrPeerDied naming the silence, and without goroutine leaks.
func TestTCPLeakHeartbeatTimeout(t *testing.T) {
	before := runtime.NumGoroutine()
	w, conn := connectWithRawPeer(t, TCPOptions{
		Timeout:   time.Minute, // recv timeout must NOT be what fires
		Heartbeat: 50 * time.Millisecond,
	})
	defer conn.Close()
	start := time.Now()
	err := w.Run(func(c *Comm) {
		c.Recv(1, 0) // the raw peer never sends anything
	})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrPeerDied) || !strings.Contains(err.Error(), "silent") {
		t.Fatalf("want silent-peer ErrPeerDied, got %v", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("silent peer took %v to detect — heartbeat window did not fire", elapsed)
	}
	checkGoroutineBaseline(t, before)
}

// TestTCPDialBackoffRecoversFromLateListener: a dial target that
// appears only after several hundred milliseconds (supervisor restart
// scenario) is reached through the backoff loop.
func TestTCPDialBackoffRecoversFromLateListener(t *testing.T) {
	lns, addrs := listenLoopback(t, 2)
	// Rank 0's listener starts late: close it and re-bind after a delay.
	addr0 := addrs[0]
	lns[0].Close()
	var wg sync.WaitGroup
	var worlds [2]*TCPWorld
	var errs [2]error
	wg.Add(2)
	go func() {
		defer wg.Done()
		time.Sleep(300 * time.Millisecond)
		ln, err := net.Listen("tcp", addr0)
		if err != nil {
			errs[0] = err
			return
		}
		worlds[0], errs[0] = ConnectTCP(context.Background(), 0, addrs, TCPOptions{Listener: ln, DialTimeout: 10 * time.Second})
	}()
	go func() {
		defer wg.Done()
		worlds[1], errs[1] = ConnectTCP(context.Background(), 1, addrs, TCPOptions{Listener: lns[1], DialTimeout: 10 * time.Second})
	}()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r, w := range worlds {
		if w != nil {
			defer w.Close()
		}
		_ = r
	}
	runErrs := runAll(worlds[:], func(c *Comm) {
		if got := c.AllReduceScalar(1); got != 2 {
			panic("allreduce over the recovered mesh is wrong")
		}
	})
	for r, err := range runErrs {
		if err != nil {
			t.Fatalf("rank %d run: %v", r, err)
		}
	}
}
