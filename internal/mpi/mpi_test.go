package mpi

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var rankCounts = []int{1, 2, 3, 4, 7, 8, 16}

func TestSendRecvPair(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 9, []float64{1, 2, 3})
			got := c.Recv(1, 10)
			if len(got) != 1 || got[0] != 42 {
				panic("rank 0 got wrong reply")
			}
		} else {
			got := c.Recv(0, 9)
			if len(got) != 3 || got[2] != 3 {
				panic("rank 1 got wrong data")
			}
			c.Send(0, 10, []float64{42})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.BytesSent(0) != 24 || w.BytesSent(1) != 8 {
		t.Fatalf("byte counts: %d, %d", w.BytesSent(0), w.BytesSent(1))
	}
}

func TestSendCopiesData(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{1}
			c.Send(1, 0, buf) // Send copies synchronously...
			buf[0] = 99       // ...so this mutation cannot reach rank 1
		} else {
			if got := c.Recv(0, 0); got[0] != 1 {
				panic("send did not copy payload")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMismatchPanics(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1})
		} else {
			c.Recv(0, 2)
		}
	})
	if err == nil {
		t.Fatal("expected error from tag mismatch")
	}
}

func TestBarrierAllRankCounts(t *testing.T) {
	for _, p := range rankCounts {
		w := NewWorld(p)
		err := w.Run(func(c *Comm) {
			for i := 0; i < 3; i++ {
				c.Barrier()
			}
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestBcast(t *testing.T) {
	for _, p := range rankCounts {
		for root := 0; root < p; root += 3 {
			w := NewWorld(p)
			err := w.Run(func(c *Comm) {
				var data []float64
				if c.Rank() == root {
					data = []float64{3.5, -1, float64(root)}
				}
				got := c.Bcast(root, data)
				if len(got) != 3 || got[0] != 3.5 || got[2] != float64(root) {
					panic("bcast payload wrong")
				}
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestReduceAndAllReduce(t *testing.T) {
	for _, p := range rankCounts {
		w := NewWorld(p)
		err := w.Run(func(c *Comm) {
			data := []float64{float64(c.Rank()), 1}
			sum := c.AllReduceSum(data)
			wantFirst := float64(p*(p-1)) / 2
			if sum[0] != wantFirst || sum[1] != float64(p) {
				panic("allreduce sum wrong")
			}
			s := c.AllReduceScalar(2)
			if s != float64(2*p) {
				panic("allreduce scalar wrong")
			}
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllReduceDeterministicBits(t *testing.T) {
	// All ranks must see the *identical* floating-point result even for
	// values whose sum depends on association order.
	const p = 8
	w := NewWorld(p)
	results := make([]float64, p)
	err := w.Run(func(c *Comm) {
		v := math.Pow(10, float64(c.Rank()-4)) // wildly varying magnitudes
		results[c.Rank()] = c.AllReduceScalar(v)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < p; r++ {
		if results[r] != results[0] {
			t.Fatalf("rank %d result %v differs from rank 0's %v", r, results[r], results[0])
		}
	}
}

func TestAllGatherV(t *testing.T) {
	for _, p := range rankCounts {
		w := NewWorld(p)
		err := w.Run(func(c *Comm) {
			local := make([]float64, c.Rank()+1) // ragged sizes
			for i := range local {
				local[i] = float64(c.Rank())
			}
			all := c.AllGatherV(local)
			for r := 0; r < p; r++ {
				if len(all[r]) != r+1 {
					panic("allgather size wrong")
				}
				for _, v := range all[r] {
					if v != float64(r) {
						panic("allgather content wrong")
					}
				}
			}
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllGatherInt32s(t *testing.T) {
	const p = 5
	w := NewWorld(p)
	err := w.Run(func(c *Comm) {
		all := c.AllGatherInt32s([]int32{int32(c.Rank()) * 10})
		for r := 0; r < p; r++ {
			if len(all[r]) != 1 || all[r][0] != int32(r)*10 {
				panic("allgather int32 wrong")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllV(t *testing.T) {
	for _, p := range rankCounts {
		w := NewWorld(p)
		err := w.Run(func(c *Comm) {
			bufs := make([][]float64, p)
			for d := range bufs {
				bufs[d] = []float64{float64(c.Rank()*100 + d)}
			}
			got := c.AllToAllV(bufs)
			for s := 0; s < p; s++ {
				if len(got[s]) != 1 || got[s][0] != float64(s*100+c.Rank()) {
					panic("alltoall content wrong")
				}
			}
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllToAllInt32s(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	err := w.Run(func(c *Comm) {
		bufs := make([][]int32, p)
		for d := range bufs {
			bufs[d] = []int32{int32(c.Rank()), int32(d)}
		}
		got := c.AllToAllInt32s(bufs)
		for s := 0; s < p; s++ {
			if got[s][0] != int32(s) || got[s][1] != int32(c.Rank()) {
				panic("alltoall int32 wrong")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCountersAndReset(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 10))
			c.SendInt32s(1, 1, make([]int32, 10))
		} else {
			c.Recv(0, 0)
			c.RecvInt32s(0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.BytesSent(0); got != 120 {
		t.Fatalf("rank 0 sent %d bytes, want 120", got)
	}
	snap := w.SnapshotBytes()
	if snap[0] != 120 || snap[1] != 0 {
		t.Fatalf("snapshot %v", snap)
	}
	w.ResetCounters()
	if w.BytesSent(0) != 0 {
		t.Fatal("reset failed")
	}
}

func TestSelfSendFreeAndDelivered(t *testing.T) {
	w := NewWorld(1)
	err := w.Run(func(c *Comm) {
		c.Send(0, 3, []float64{7})
		if got := c.Recv(0, 3); got[0] != 7 {
			panic("self-send lost")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.BytesSent(0) != 0 {
		t.Fatal("self-send should not count bytes")
	}
}

func TestRunPropagatesPanicWithRank(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 2 {
			panic("boom")
		}
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

// TestRunPanicAbortsBlockedRanks is the goroutine-leak regression: a
// panicking rank must release peers blocked mid-collective (they fail
// with ErrAborted) instead of abandoning their goroutines forever.
func TestRunPanicAbortsBlockedRanks(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		w := NewWorld(4)
		err := w.Run(func(c *Comm) {
			if c.Rank() == 1 {
				panic("rank 1 dies mid-collective")
			}
			c.Barrier() // blocks on rank 1 forever without the abort path
			c.AllReduceScalar(1)
		})
		if err == nil {
			t.Fatal("expected error")
		}
		if !strings.Contains(err.Error(), "rank 1") {
			t.Fatalf("error does not name the dead rank: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("rank goroutines leaked: before=%d after=%d\n%s",
		before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestRunContextTimeoutOnDeadlock: a deadlocked world must fail with a
// context error once the deadline passes, on every rank, not hang.
func TestRunContextTimeoutOnDeadlock(t *testing.T) {
	w := NewWorld(2)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := w.RunContext(ctx, func(c *Comm) {
		c.Recv((c.Rank()+1)%2, 0) // mutual deadlock: nobody sends
	})
	if err == nil {
		t.Fatal("deadlocked world returned nil")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded as root cause, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout did not fire promptly")
	}
}

func TestAbortErrorsAreTyped(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Recv(1, 0)
		} else {
			panic(&Error{Rank: 1, Peer: -1, Op: "test", Err: ErrTimeout})
		}
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("root cause not preserved: %v", err)
	}
	var te *Error
	if !errors.As(err, &te) || te.Rank != 1 {
		t.Fatalf("typed error lost: %v", err)
	}
}

// Property: AllReduceSum equals the serial sum for random vectors at
// random rank counts.
func TestAllReduceProperty(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -(seed + 1)
		}
		p := int(seed%6) + 2
		n := int(seed%7) + 1
		w := NewWorld(p)
		inputs := make([][]float64, p)
		for r := range inputs {
			inputs[r] = make([]float64, n)
			for i := range inputs[r] {
				inputs[r][i] = float64((seed+int64(r*31+i))%100) / 7
			}
		}
		want := make([]float64, n)
		for r := 0; r < p; r++ { // rank-0-rooted fixed-order sum
			for i := range want {
				if r == 0 {
					want[i] = inputs[0][i]
				} else {
					want[i] += inputs[r][i]
				}
			}
		}
		ok := true
		err := w.Run(func(c *Comm) {
			got := c.AllReduceSum(inputs[c.Rank()])
			for i := range got {
				if got[i] != want[i] {
					ok = false
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
