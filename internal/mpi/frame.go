package mpi

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Wire format. Every transfer between TCP ranks is one length-prefixed
// binary frame, little-endian:
//
//	uint32  length   bytes that follow the length field (header + payload)
//	uint8   kind     frameFloat64 | frameInt32 | frameHandshake | frameBye
//	uint32  tag      message tag (collective or user)
//	uint32  meta     message meta field (two's-complement int32)
//	[]byte  payload  length-9 bytes: count*8 float64s or count*4 int32s
//
// The fixed header after the length field is frameHeaderLen bytes, so
// length >= frameHeaderLen always. Handshake frames carry an int32
// payload (protocol fields); bye frames carry none and mark a clean
// connection shutdown, ordered after all data frames; heartbeat frames
// carry none and only prove the peer is alive (they count as wire
// bytes but never as payload).
const (
	frameHeaderLen = 9
	frameLenSize   = 4

	frameFloat64   = byte(1)
	frameInt32     = byte(2)
	frameHandshake = byte(3)
	frameBye       = byte(4)
	frameHeartbeat = byte(5)

	// ProtocolVersion is carried in the connection handshake; both ends
	// must agree or the connection is refused with ErrHandshake.
	// Version 2 added idle heartbeat frames (frameHeartbeat).
	ProtocolVersion = 2

	// defaultMaxFrame bounds the accepted frame length (1 GiB): a
	// corrupt or hostile length prefix must produce a typed error, not
	// an attempted giant allocation.
	defaultMaxFrame = 1 << 30
)

// frame is the decoded wire form of a message plus its kind.
type frame struct {
	kind byte
	msg  message
}

// frameWireLen returns the total on-the-wire size of a message payload
// frame (length prefix + header + payload).
func frameWireLen(m *message) int {
	return frameLenSize + frameHeaderLen + 8*len(m.f) + 4*len(m.i)
}

// appendFrame encodes one message (or control frame) onto buf. Messages
// carry either the float64 or the int32 payload; kind selects which (a
// message with both is a programming error and unreachable from Comm).
func appendFrame(buf []byte, kind byte, m *message) []byte {
	payload := 8 * len(m.f)
	if kind == frameInt32 || kind == frameHandshake {
		payload = 4 * len(m.i)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(frameHeaderLen+payload))
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.tag))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(m.meta)))
	switch kind {
	case frameFloat64:
		for _, v := range m.f {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	case frameInt32, frameHandshake:
		for _, v := range m.i {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		}
	}
	return buf
}

// validateFrameHeader checks the length prefix and kind byte and
// returns the payload length. All failures wrap ErrBadFrame.
func validateFrameHeader(length uint32, kind byte, maxFrame int) (int, error) {
	if length < frameHeaderLen {
		return 0, fmt.Errorf("%w: declared length %d below header size %d", ErrBadFrame, length, frameHeaderLen)
	}
	if int64(length) > int64(maxFrame) {
		return 0, fmt.Errorf("%w: declared length %d exceeds the %d-byte frame cap", ErrBadFrame, length, maxFrame)
	}
	payload := int(length) - frameHeaderLen
	switch kind {
	case frameFloat64:
		if payload%8 != 0 {
			return 0, fmt.Errorf("%w: float64 payload of %d bytes is not a multiple of 8", ErrBadFrame, payload)
		}
	case frameInt32, frameHandshake:
		if payload%4 != 0 {
			return 0, fmt.Errorf("%w: int32 payload of %d bytes is not a multiple of 4", ErrBadFrame, payload)
		}
	case frameBye, frameHeartbeat:
		if payload != 0 {
			return 0, fmt.Errorf("%w: control frame kind %d carries %d payload bytes", ErrBadFrame, kind, payload)
		}
	default:
		return 0, fmt.Errorf("%w: unknown frame kind %d", ErrBadFrame, kind)
	}
	return payload, nil
}

// parseFrameBody decodes the fixed header fields and payload (already
// length-validated) into a frame.
func parseFrameBody(kind byte, body []byte) frame {
	fr := frame{kind: kind}
	fr.msg.tag = int(binary.LittleEndian.Uint32(body[1:5]))
	fr.msg.meta = int(int32(binary.LittleEndian.Uint32(body[5:9])))
	payload := body[frameHeaderLen:]
	switch kind {
	case frameFloat64:
		if n := len(payload) / 8; n > 0 {
			fr.msg.f = make([]float64, n)
			for i := range fr.msg.f {
				fr.msg.f[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
			}
		}
	case frameInt32, frameHandshake:
		if n := len(payload) / 4; n > 0 {
			fr.msg.i = make([]int32, n)
			for i := range fr.msg.i {
				fr.msg.i[i] = int32(binary.LittleEndian.Uint32(payload[4*i:]))
			}
		}
	}
	return fr
}

// decodeFrame parses one frame from the front of b and returns it with
// the number of bytes consumed. A short buffer returns
// io.ErrUnexpectedEOF; a corrupt one returns an error wrapping
// ErrBadFrame. It never panics on any input — the FuzzFrameDecode
// contract.
func decodeFrame(b []byte, maxFrame int) (frame, int, error) {
	if maxFrame <= 0 {
		maxFrame = defaultMaxFrame
	}
	if len(b) < frameLenSize+frameHeaderLen {
		return frame{}, 0, fmt.Errorf("%w: truncated frame header", io.ErrUnexpectedEOF)
	}
	length := binary.LittleEndian.Uint32(b)
	kind := b[frameLenSize]
	payload, err := validateFrameHeader(length, kind, maxFrame)
	if err != nil {
		return frame{}, 0, err
	}
	total := frameLenSize + frameHeaderLen + payload
	if len(b) < total {
		return frame{}, 0, fmt.Errorf("%w: frame declares %d payload bytes, %d available",
			io.ErrUnexpectedEOF, payload, len(b)-frameLenSize-frameHeaderLen)
	}
	return parseFrameBody(kind, b[frameLenSize:total]), total, nil
}

// readFrame reads exactly one frame from the stream, sharing the header
// validation and body parsing with decodeFrame. It returns the frame
// and its total wire size. EOF cleanly between frames returns io.EOF;
// EOF inside a frame returns io.ErrUnexpectedEOF.
func readFrame(br *bufio.Reader, maxFrame int) (frame, int, error) {
	if maxFrame <= 0 {
		maxFrame = defaultMaxFrame
	}
	var hdr [frameLenSize + frameHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:frameLenSize]); err != nil {
		return frame{}, 0, err
	}
	length := binary.LittleEndian.Uint32(hdr[:frameLenSize])
	if _, err := io.ReadFull(br, hdr[frameLenSize:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return frame{}, 0, err
	}
	kind := hdr[frameLenSize]
	payload, err := validateFrameHeader(length, kind, maxFrame)
	if err != nil {
		return frame{}, 0, err
	}
	body := make([]byte, frameHeaderLen+payload)
	copy(body, hdr[frameLenSize:])
	if _, err := io.ReadFull(br, body[frameHeaderLen:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return frame{}, 0, err
	}
	return parseFrameBody(kind, body), frameLenSize + frameHeaderLen + payload, nil
}
