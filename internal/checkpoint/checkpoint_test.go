package checkpoint

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"hypertensor/internal/dense"
	"hypertensor/internal/tensor"
)

func sampleState(sweep int) *State {
	f0 := dense.NewMatrix(4, 2)
	f1 := dense.NewMatrix(3, 2)
	for i := range f0.Data {
		f0.Data[i] = 0.25*float64(i) - 1
	}
	for i := range f1.Data {
		f1.Data[i] = -0.5 * float64(i)
	}
	g := tensor.NewDense([]int{2, 2})
	for i := range g.Data {
		g.Data[i] = float64(i) * 1.5
	}
	hist := make([]float64, sweep)
	for i := range hist {
		hist[i] = 0.1 * float64(i+1)
	}
	return &State{
		Sweep:       sweep,
		Step:        int64(2 * sweep),
		SeedBase:    42,
		WarmReady:   sweep%2 == 1,
		NormX:       math.Sqrt(17),
		Factors:     []*dense.Matrix{f0, f1},
		Core:        g,
		FitHistory:  hist,
		ChosenRanks: []int{2, 2},
	}
}

func statesEqual(t *testing.T, a, b *State) {
	t.Helper()
	if a.Sweep != b.Sweep || a.Step != b.Step || a.SeedBase != b.SeedBase ||
		a.WarmReady != b.WarmReady || math.Float64bits(a.NormX) != math.Float64bits(b.NormX) {
		t.Fatalf("scalar fields differ: %+v vs %+v", a, b)
	}
	if len(a.Factors) != len(b.Factors) {
		t.Fatalf("factor count %d vs %d", len(a.Factors), len(b.Factors))
	}
	for n := range a.Factors {
		fa, fb := a.Factors[n], b.Factors[n]
		if fa.Rows != fb.Rows || fa.Cols != fb.Cols {
			t.Fatalf("factor %d shape %dx%d vs %dx%d", n, fa.Rows, fa.Cols, fb.Rows, fb.Cols)
		}
		for i := range fa.Data {
			if math.Float64bits(fa.Data[i]) != math.Float64bits(fb.Data[i]) {
				t.Fatalf("factor %d element %d differs", n, i)
			}
		}
	}
	if (a.Core == nil) != (b.Core == nil) {
		t.Fatalf("core presence differs")
	}
	if a.Core != nil {
		if len(a.Core.Dims) != len(b.Core.Dims) {
			t.Fatalf("core order differs")
		}
		for m := range a.Core.Dims {
			if a.Core.Dims[m] != b.Core.Dims[m] {
				t.Fatalf("core dim %d differs", m)
			}
		}
		for i := range a.Core.Data {
			if math.Float64bits(a.Core.Data[i]) != math.Float64bits(b.Core.Data[i]) {
				t.Fatalf("core element %d differs", i)
			}
		}
	}
	if len(a.FitHistory) != len(b.FitHistory) {
		t.Fatalf("history length differs")
	}
	for i := range a.FitHistory {
		if math.Float64bits(a.FitHistory[i]) != math.Float64bits(b.FitHistory[i]) {
			t.Fatalf("history entry %d differs", i)
		}
	}
	if len(a.ChosenRanks) != len(b.ChosenRanks) {
		t.Fatalf("rank count differs")
	}
	for i := range a.ChosenRanks {
		if a.ChosenRanks[i] != b.ChosenRanks[i] {
			t.Fatalf("rank %d differs", i)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, sweep := range []int{0, 1, 5} {
		s := sampleState(sweep)
		if sweep == 0 {
			s.Core = nil
			s.WarmReady = false
		}
		b, err := Encode(s)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		statesEqual(t, s, got)

		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err = Read(&buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		statesEqual(t, s, got)
	}
}

func TestDecodeTypedErrors(t *testing.T) {
	good, err := Encode(sampleState(3))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrTruncated},
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] ^= 0xff
			return c
		}, ErrBadMagic},
		{"short magic", func(b []byte) []byte { return []byte("XX") }, ErrTruncated},
		{"future version", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(magic)] = 99
			return c
		}, ErrVersion},
		{"torn tail", func(b []byte) []byte { return b[:len(b)-9] }, ErrTruncated},
		{"torn header", func(b []byte) []byte { return b[:headerLen-1] }, ErrTruncated},
		{"bit flip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[headerLen+20] ^= 0x01
			return c
		}, ErrChecksum},
		{"trailing garbage", func(b []byte) []byte { return append(append([]byte(nil), b...), 0) }, ErrCorrupt},
	}
	for _, tc := range cases {
		s, err := Decode(tc.mut(good))
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got error %v, want %v", tc.name, err, tc.want)
		}
		if s != nil {
			t.Errorf("%s: got non-nil state with error", tc.name)
		}
	}
}

func TestSaveLoadLatestAndPrune(t *testing.T) {
	dir := t.TempDir()
	for sweep := 1; sweep <= 4; sweep++ {
		if _, err := Save(dir, sampleState(sweep)); err != nil {
			t.Fatalf("save sweep %d: %v", sweep, err)
		}
	}
	// Only the two newest survive pruning.
	ents, _ := os.ReadDir(dir)
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("want 2 kept checkpoints, have %v", names)
	}
	s, path, err := LoadLatest(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if s.Sweep != 4 {
		t.Fatalf("loaded sweep %d from %s, want 4", s.Sweep, path)
	}
	statesEqual(t, sampleState(4), s)
}

func TestLoadLatestFallsBackPastTornFile(t *testing.T) {
	dir := t.TempDir()
	if _, err := Save(dir, sampleState(2)); err != nil {
		t.Fatal(err)
	}
	path4, err := Save(dir, sampleState(4))
	if err != nil {
		t.Fatal(err)
	}
	// Tear the newest file in half, as a crash mid-write would.
	b, err := os.ReadFile(path4)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path4, b[:len(b)/2], 0o666); err != nil {
		t.Fatal(err)
	}
	s, path, err := LoadLatest(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if s.Sweep != 2 {
		t.Fatalf("loaded sweep %d from %s, want fallback to 2", s.Sweep, path)
	}
}

func TestLoadLatestNotFound(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := LoadLatest(dir); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty dir: got %v, want ErrNotFound", err)
	}
	if _, _, err := LoadLatest(filepath.Join(dir, "missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing dir: got %v, want ErrNotFound", err)
	}
	// A directory whose only checkpoint is corrupt also reports
	// ErrNotFound so recovery can start fresh.
	if _, err := Save(dir, sampleState(1)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, FileName(1)), []byte("junk"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadLatest(dir); !errors.Is(err, ErrNotFound) {
		t.Fatalf("all-corrupt dir: got %v, want ErrNotFound", err)
	}
}

func TestSweepOf(t *testing.T) {
	if got := sweepOf(FileName(37)); got != 37 {
		t.Fatalf("sweepOf round trip: %d", got)
	}
	for _, bad := range []string{"ckpt-.htck", "ckpt-12.tmp", "other", "ckpt-9x.htck"} {
		if got := sweepOf(bad); got != -1 {
			t.Fatalf("sweepOf(%q) = %d, want -1", bad, got)
		}
	}
}
