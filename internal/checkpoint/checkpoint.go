// Package checkpoint implements the crash-consistent snapshot format
// used for single-node and distributed recovery: a versioned,
// checksummed binary encoding of everything the HOOI sweep loop needs
// to continue bitwise identically after a crash — factor matrices, the
// core tensor, the sweep counter, the fit-tracker history, the chosen
// ranks, and the position of the monotone seed schedule.
//
// The format is deliberately dumb: little-endian fixed-width fields, a
// 6-byte magic, a version, an explicit payload length, and a trailing
// CRC-64 (ECMA) over everything that precedes it. Decode verifies the
// checksum before parsing a single field, so a torn or bit-flipped
// file is rejected with a typed error and never yields partial state.
//
// Save writes atomically (temp file + fsync + rename in the same
// directory) and keeps the two most recent checkpoints, so there is
// always a last-good file to fall back to if a crash tears the newest
// one. LoadLatest walks checkpoints newest-first and returns the first
// one that decodes cleanly.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hypertensor/internal/dense"
	"hypertensor/internal/tensor"
)

// Typed decode errors. Decode and Read never panic on malformed input
// and never return partial state: the result is either a fully
// validated *State or a nil state with one of these in the chain.
var (
	// ErrBadMagic means the input does not start with the checkpoint
	// magic — it is not a checkpoint file at all.
	ErrBadMagic = errors.New("checkpoint: bad magic")
	// ErrVersion means the format version is newer than this build
	// understands.
	ErrVersion = errors.New("checkpoint: unsupported version")
	// ErrTruncated means the input ends before the declared payload
	// and checksum — the classic torn write.
	ErrTruncated = errors.New("checkpoint: truncated")
	// ErrChecksum means the trailing CRC-64 does not match the bytes.
	ErrChecksum = errors.New("checkpoint: checksum mismatch")
	// ErrCorrupt means the checksum held but the payload is
	// internally inconsistent (counts disagree with available bytes).
	ErrCorrupt = errors.New("checkpoint: corrupt payload")
	// ErrNotFound means no usable checkpoint exists in the directory.
	ErrNotFound = errors.New("checkpoint: no usable checkpoint")
	// ErrMismatch is returned by resume paths when a checkpoint is
	// valid but belongs to a different tensor or configuration.
	ErrMismatch = errors.New("checkpoint: state does not match plan")
)

const (
	magic   = "HTCKPT"
	version = 1

	// headerLen is magic + version (uint16) + payload length (uint32).
	headerLen = len(magic) + 2 + 4
	crcLen    = 8

	// maxPayload bounds the declared payload length so a corrupt
	// header cannot demand an absurd allocation before the length is
	// checked against the actual input size.
	maxPayload = 1 << 40

	// keep is how many most-recent checkpoint files Save retains.
	keep = 2

	filePrefix = "ckpt-"
	fileSuffix = ".htck"
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// State is everything needed to resume an interrupted HOOI solve so
// that its fit trajectory continues bitwise identically. Sweep counts
// completed sweeps of the in-progress solve; Step is the number of
// mode solves consumed from the monotone seed schedule (SweepState);
// WarmReady records whether the solve started with warm Lanczos
// starts; NormX pins the input tensor's Frobenius norm so a resume
// against the wrong tensor is rejected.
type State struct {
	Sweep       int
	Step        int64
	SeedBase    int64
	WarmReady   bool
	NormX       float64
	Factors     []*dense.Matrix
	Core        *tensor.Dense // nil before the first completed sweep
	FitHistory  []float64
	ChosenRanks []int
}

// validate checks the structural invariants every writer maintains.
func (s *State) validate() error {
	if s == nil {
		return errors.New("checkpoint: nil state")
	}
	if s.Sweep < 0 || s.Step < 0 {
		return fmt.Errorf("checkpoint: negative sweep %d or step %d", s.Sweep, s.Step)
	}
	if len(s.Factors) == 0 {
		return errors.New("checkpoint: no factors")
	}
	for n, f := range s.Factors {
		if f == nil || f.Rows < 0 || f.Cols < 0 || len(f.Data) != f.Rows*f.Cols {
			return fmt.Errorf("checkpoint: malformed factor %d", n)
		}
	}
	return nil
}

// Encode serializes s into a fresh byte slice.
func Encode(s *State) ([]byte, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	b := make([]byte, 0, encodedSize(s))
	b = append(b, magic...)
	b = binary.LittleEndian.AppendUint16(b, version)
	b = binary.LittleEndian.AppendUint32(b, 0) // payload length patched below
	payloadStart := len(b)

	b = binary.LittleEndian.AppendUint32(b, uint32(s.Sweep))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Step))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.SeedBase))
	if s.WarmReady {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.NormX))

	b = binary.LittleEndian.AppendUint16(b, uint16(len(s.Factors)))
	for _, f := range s.Factors {
		b = binary.LittleEndian.AppendUint32(b, uint32(f.Rows))
		b = binary.LittleEndian.AppendUint32(b, uint32(f.Cols))
		b = appendFloats(b, f.Data)
	}

	if s.Core != nil {
		b = append(b, 1)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(s.Core.Dims)))
		for _, d := range s.Core.Dims {
			b = binary.LittleEndian.AppendUint32(b, uint32(d))
		}
		b = appendFloats(b, s.Core.Data)
	} else {
		b = append(b, 0)
	}

	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.FitHistory)))
	b = appendFloats(b, s.FitHistory)

	b = binary.LittleEndian.AppendUint16(b, uint16(len(s.ChosenRanks)))
	for _, r := range s.ChosenRanks {
		b = binary.LittleEndian.AppendUint32(b, uint32(r))
	}

	binary.LittleEndian.PutUint32(b[len(magic)+2:], uint32(len(b)-payloadStart))
	b = binary.LittleEndian.AppendUint64(b, crc64.Checksum(b, crcTable))
	return b, nil
}

func encodedSize(s *State) int {
	n := headerLen + 4 + 8 + 8 + 1 + 8 + 2 + crcLen
	for _, f := range s.Factors {
		n += 8 + 8*len(f.Data)
	}
	n++ // core flag
	if s.Core != nil {
		n += 2 + 4*len(s.Core.Dims) + 8*len(s.Core.Data)
	}
	n += 4 + 8*len(s.FitHistory)
	n += 2 + 4*len(s.ChosenRanks)
	return n
}

func appendFloats(b []byte, v []float64) []byte {
	for _, x := range v {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
	}
	return b
}

// Decode parses and validates a checkpoint produced by Encode. The
// checksum is verified before any field is interpreted; all counts are
// bounds-checked against the remaining bytes before allocation.
func Decode(b []byte) (*State, error) {
	if len(b) < headerLen {
		if len(b) >= len(magic) && string(b[:len(magic)]) != magic {
			return nil, ErrBadMagic
		}
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	if string(b[:len(magic)]) != magic {
		return nil, ErrBadMagic
	}
	v := binary.LittleEndian.Uint16(b[len(magic):])
	if v != version {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, version)
	}
	plen := uint64(binary.LittleEndian.Uint32(b[len(magic)+2:]))
	if plen > maxPayload {
		return nil, fmt.Errorf("%w: declared payload %d bytes", ErrCorrupt, plen)
	}
	total := uint64(headerLen) + plen + crcLen
	if uint64(len(b)) < total {
		return nil, fmt.Errorf("%w: have %d bytes, need %d", ErrTruncated, len(b), total)
	}
	if uint64(len(b)) > total {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, uint64(len(b))-total)
	}
	body := b[:headerLen+int(plen)]
	want := binary.LittleEndian.Uint64(b[len(body):])
	if got := crc64.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("%w: got %016x, want %016x", ErrChecksum, got, want)
	}

	r := reader{b: body[headerLen:]}
	s := &State{}
	s.Sweep = int(r.u32())
	s.Step = int64(r.u64())
	s.SeedBase = int64(r.u64())
	s.WarmReady = r.u8() != 0
	s.NormX = math.Float64frombits(r.u64())

	nf := int(r.u16())
	if r.err == nil && nf == 0 {
		return nil, fmt.Errorf("%w: zero factors", ErrCorrupt)
	}
	for n := 0; n < nf && r.err == nil; n++ {
		rows := int(r.u32())
		cols := int(r.u32())
		data := r.floats(rows, cols)
		if r.err != nil {
			break
		}
		s.Factors = append(s.Factors, &dense.Matrix{Rows: rows, Cols: cols, Data: data})
	}

	if r.u8() != 0 && r.err == nil {
		nd := int(r.u16())
		if r.err == nil && nd == 0 {
			return nil, fmt.Errorf("%w: zero-order core", ErrCorrupt)
		}
		dims := make([]int, 0, min(nd, 64))
		size := 1
		for m := 0; m < nd && r.err == nil; m++ {
			d := int(r.u32())
			if d <= 0 || (size > 0 && d > math.MaxInt/size) {
				r.fail("core dims overflow")
				break
			}
			size *= d
			dims = append(dims, d)
		}
		data := r.floats(size, 1)
		if r.err == nil {
			c := tensor.NewDense(dims)
			copy(c.Data, data)
			s.Core = c
		}
	}

	nh := int(r.u32())
	s.FitHistory = r.floats(nh, 1)

	nr := int(r.u16())
	for i := 0; i < nr && r.err == nil; i++ {
		s.ChosenRanks = append(s.ChosenRanks, int(r.u32()))
	}
	if r.err == nil && len(r.b) != 0 {
		r.fail(fmt.Sprintf("%d unconsumed payload bytes", len(r.b)))
	}
	if r.err != nil {
		return nil, r.err
	}
	if s.Sweep < 0 || s.Step < 0 {
		return nil, fmt.Errorf("%w: negative sweep or step", ErrCorrupt)
	}
	if len(s.FitHistory) != s.Sweep {
		return nil, fmt.Errorf("%w: %d fit entries for sweep %d", ErrCorrupt, len(s.FitHistory), s.Sweep)
	}
	return s, nil
}

// reader is a bounds-checked little-endian cursor over the payload. A
// short read sets err and every later read returns zero values, so a
// single error check suffices after a parse sequence.
type reader struct {
	b   []byte
	err error
}

func (r *reader) fail(msg string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCorrupt, msg)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b) < n {
		r.fail(fmt.Sprintf("need %d bytes, have %d", n, len(r.b)))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) u8() byte {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (r *reader) u16() uint16 {
	if b := r.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (r *reader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *reader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

// floats reads rows*cols float64s, bounds-checking the product before
// allocating so hostile counts cannot demand huge buffers.
func (r *reader) floats(rows, cols int) []float64 {
	if r.err != nil {
		return nil
	}
	if rows < 0 || cols < 0 || (cols != 0 && rows > math.MaxInt/cols) {
		r.fail(fmt.Sprintf("element count %dx%d overflows", rows, cols))
		return nil
	}
	n := rows * cols
	if n > len(r.b)/8 {
		r.fail(fmt.Sprintf("%d float64s exceed %d remaining bytes", n, len(r.b)))
		return nil
	}
	b := r.take(8 * n)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// Write encodes s and writes it to w.
func Write(w io.Writer, s *State) error {
	b, err := Encode(s)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// Read decodes a checkpoint from r (reading it fully).
func Read(r io.Reader) (*State, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read: %w", err)
	}
	return Decode(b)
}

// FileName returns the canonical checkpoint file name for a sweep.
func FileName(sweep int) string {
	return fmt.Sprintf("%s%09d%s", filePrefix, sweep, fileSuffix)
}

// sweepOf parses the sweep counter out of a checkpoint file name,
// returning -1 for names that are not checkpoints.
func sweepOf(name string) int {
	if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
		return -1
	}
	mid := name[len(filePrefix) : len(name)-len(fileSuffix)]
	if len(mid) == 0 {
		return -1
	}
	n := 0
	for _, c := range mid {
		if c < '0' || c > '9' || n > math.MaxInt/10 {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// Save atomically writes s into dir as ckpt-<sweep>.htck: the bytes go
// to a temp file in the same directory, are fsynced, and are renamed
// over the final name, so a crash at any point leaves either the old
// file or the complete new one. Older checkpoints beyond the two most
// recent are pruned. The directory is created if missing. Save returns
// the final path.
func Save(dir string, s *State) (string, error) {
	b, err := Encode(s)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-ckpt-*")
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(b); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("checkpoint: write %s: %w", tmpName, err)
	}
	final := filepath.Join(dir, FileName(s.Sweep))
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	// Best effort: persist the rename itself. Not all filesystems
	// support fsync on directories; recovery only needs one of the
	// kept files to survive.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	prune(dir)
	return final, nil
}

// prune removes checkpoint files beyond the `keep` newest (by sweep).
func prune(dir string) {
	sweeps := list(dir)
	for _, sw := range sweeps[min(keep, len(sweeps)):] {
		os.Remove(filepath.Join(dir, FileName(sw)))
	}
}

// list returns the sweeps of all checkpoint files in dir, newest first.
func list(dir string) []int {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var sweeps []int
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if sw := sweepOf(e.Name()); sw >= 0 {
			sweeps = append(sweeps, sw)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sweeps)))
	return sweeps
}

// LoadLatest returns the newest checkpoint in dir that decodes
// cleanly, falling back past torn or corrupt files to the last good
// one. It returns the loaded state and the path it came from. When the
// directory has no checkpoint files at all — or none of them decode —
// the error wraps ErrNotFound so callers can choose a fresh start.
func LoadLatest(dir string) (*State, string, error) {
	sweeps := list(dir)
	if len(sweeps) == 0 {
		return nil, "", fmt.Errorf("%w in %s", ErrNotFound, dir)
	}
	var errs []error
	for _, sw := range sweeps {
		path := filepath.Join(dir, FileName(sw))
		b, err := os.ReadFile(path)
		if err == nil {
			var s *State
			if s, err = Decode(b); err == nil {
				return s, path, nil
			}
		}
		errs = append(errs, fmt.Errorf("%s: %w", filepath.Base(path), err))
	}
	return nil, "", fmt.Errorf("%w in %s: %w", ErrNotFound, dir, errors.Join(errs...))
}
