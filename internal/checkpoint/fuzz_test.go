package checkpoint

import (
	"errors"
	"testing"
)

// FuzzCheckpointDecode asserts the decode contract: arbitrary input —
// malformed, truncated, bit-flipped — must produce a typed error and
// never panic, and a successful decode must re-encode to an equivalent
// checkpoint.
func FuzzCheckpointDecode(f *testing.F) {
	for _, sweep := range []int{0, 1, 3} {
		s := sampleState(sweep)
		if sweep == 0 {
			s.Core = nil
		}
		b, err := Encode(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		f.Add(b[:len(b)/2])
	}
	f.Add([]byte{})
	f.Add([]byte("HTCKPT"))
	f.Add([]byte("not a checkpoint at all, just bytes"))

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := Decode(b)
		if err != nil {
			if s != nil {
				t.Fatalf("error %v with non-nil state", err)
			}
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) &&
				!errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// A valid decode must survive a round trip bit-for-bit.
		b2, err := Encode(s)
		if err != nil {
			t.Fatalf("re-encode of decoded state failed: %v", err)
		}
		s2, err := Decode(b2)
		if err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		statesEqual(t, s, s2)
	})
}
