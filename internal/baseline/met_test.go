package baseline

import (
	"math"
	"testing"

	"hypertensor/internal/core"
	"hypertensor/internal/dist"
	"hypertensor/internal/gen"
)

func TestBaselineMatchesCorePerSweep(t *testing.T) {
	x := gen.Random(gen.Config{Dims: []int{25, 20, 15}, NNZ: 600, Skew: 0.5, Seed: 7})
	ranks := []int{3, 4, 2}
	initial := dist.DefaultInitial(x.Dims, ranks, 11)
	opts := core.Options{Ranks: ranks, MaxIters: 3, Tol: -1, Seed: 11, Initial: initial}
	ref, err := core.Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.FitHistory) != len(ref.FitHistory) {
		t.Fatalf("sweep counts differ: %d vs %d", len(got.FitHistory), len(ref.FitHistory))
	}
	for i := range ref.FitHistory {
		if math.Abs(got.FitHistory[i]-ref.FitHistory[i]) > 1e-6 {
			t.Fatalf("sweep %d: baseline fit %v, core fit %v", i, got.FitHistory[i], ref.FitHistory[i])
		}
	}
}

func TestBaseline4Mode(t *testing.T) {
	x := gen.Random(gen.Config{Dims: []int{12, 10, 14, 8}, NNZ: 400, Skew: 0.4, Seed: 13})
	ranks := []int{2, 2, 2, 2}
	initial := dist.DefaultInitial(x.Dims, ranks, 17)
	opts := core.Options{Ranks: ranks, MaxIters: 2, Tol: -1, Seed: 17, Initial: initial}
	ref, err := core.Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Fit-ref.Fit) > 1e-6 {
		t.Fatalf("fit %v, want %v", got.Fit, ref.Fit)
	}
}

func TestBaselineValidation(t *testing.T) {
	x := gen.Random(gen.Config{Dims: []int{5, 5, 5}, NNZ: 20, Seed: 1})
	if _, err := Decompose(x, core.Options{Ranks: []int{9, 2, 2}}); err == nil {
		t.Fatal("invalid rank accepted")
	}
}

func TestBaselineTolStops(t *testing.T) {
	x := gen.Random(gen.Config{Dims: []int{15, 15, 15}, NNZ: 300, Skew: 0, Seed: 3})
	res, err := Decompose(x, core.Options{Ranks: []int{2, 2, 2}, MaxIters: 40, Tol: 1e-3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters >= 40 {
		t.Fatal("tolerance did not stop baseline")
	}
}
