// Package baseline implements the comparison algorithm of the paper's
// §V: a HOOI whose TTMc step follows the MET (memory-efficient Tucker,
// Matlab Tensor Toolbox) strategy of materializing semi-sparse
// intermediate tensors through a chain of single-mode TTM products,
// instead of the paper's nonzero-based formulation. The paper reports
// 87.2 s (MET) vs 11.3 s (HyperTensor) for 5 sweeps on a random
// 10K×10K×10K tensor with 1M nonzeros on one core; the harness
// reproduces the ratio between these two code paths at laptop scale.
package baseline

import (
	"fmt"

	"hypertensor/internal/core"
	"hypertensor/internal/dense"
	"hypertensor/internal/tensor"
	"hypertensor/internal/trsvd"
	"hypertensor/internal/ttm"
)

// Decompose runs HOOI with chain-based (MET-style) TTMc. Options are
// interpreted as in core.Decompose; the SVD method selection is honored
// (default Lanczos), but Threads only affects the TRSVD (the chain
// baseline itself is sequential, matching the single-core comparison).
func Decompose(x *tensor.COO, optsIn core.Options) (*core.Result, error) {
	if err := optsIn.Validate(x); err != nil {
		return nil, err
	}
	opts := optsIn
	if opts.MaxIters == 0 {
		opts.MaxIters = 50
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-5
	}
	order := x.Order()
	normX := x.Norm(opts.Threads)
	// The baseline rides the same resident per-mode state as the main
	// Engine (factors, reusable TRSVD workspaces, seed schedule), so its
	// relative timings are not skewed by per-call allocations the main
	// path no longer performs and its seed sequence matches core's.
	state := core.NewSweepState(initialFactors(x, opts), opts.Seed)
	factors := state.Factors

	res := &core.Result{}
	fits := core.NewFitTracker(normX, opts.Tol)
	for iter := 0; iter < opts.MaxIters; iter++ {
		var lastRows []int32
		var lastY *dense.Matrix
		for n := 0; n < order; n++ {
			rows, y := ttm.ChainTTMc(x, n, factors)
			op := &trsvd.DenseOperator{A: y, Threads: opts.Threads}
			sres, err := state.SolveOperator(op, n, opts.Ranks[n], core.SVDLanczos, nil)
			if err != nil {
				return nil, fmt.Errorf("baseline: TRSVD failed in mode %d: %w", n, err)
			}
			factors[n].Zero()
			for r, row := range rows {
				copy(factors[n].Row(int(row)), sres.U.Row(r))
			}
			lastRows, lastY = rows, y
		}
		// Core: G_(N-1) = Ũ^T Y over the nonempty rows.
		last := order - 1
		uc := dense.NewMatrix(len(lastRows), opts.Ranks[last])
		for r, row := range lastRows {
			copy(uc.Row(r), factors[last].Row(int(row)))
		}
		gm := dense.MatMulTA(uc, lastY, opts.Threads)
		res.Core = ttm.CoreFromMatricized(gm, opts.Ranks, last)

		fit, stop := fits.Record(res.Core.Norm())
		res.Fit = fit
		res.Iters = iter + 1
		if stop {
			break
		}
	}
	res.FitHistory = fits.History
	res.Factors = factors
	return res, nil
}

// initialFactors mirrors core's initialization for fair comparisons:
// explicit Initial factors are copied; otherwise a seeded random
// orthonormal start is drawn (identical to core.InitRandom for the same
// seed, because both use dense.RandomNormal under rand.NewSource).
func initialFactors(x *tensor.COO, opts core.Options) []*dense.Matrix {
	if opts.Initial != nil {
		out := make([]*dense.Matrix, len(opts.Initial))
		for n, u := range opts.Initial {
			out[n] = u.Clone()
		}
		return out
	}
	// Delegate to core by running zero iterations is not possible, so
	// replicate the simple random path here.
	out := make([]*dense.Matrix, x.Order())
	rng := newSeededRNG(opts.Seed)
	for n := range out {
		out[n] = dense.Orthonormalize(dense.RandomNormal(x.Dims[n], opts.Ranks[n], rng))
	}
	return out
}
