package baseline

import "math/rand"

// newSeededRNG centralizes the RNG construction so the baseline's
// random initialization matches core.InitRandom for equal seeds.
func newSeededRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
