package hypertensor

import (
	"math"
	"path/filepath"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	// Build a small tensor through the public API.
	x := NewSparseTensor([]int{20, 15, 10}, 0)
	for i := 0; i < 20; i++ {
		for j := 0; j < 5; j++ {
			x.Append([]int{i, (i + j) % 15, (i * j) % 10}, float64(1+i+j))
		}
	}
	x.SortDedup()

	dec, err := Decompose(x, Options{Ranks: []int{3, 3, 3}, MaxIters: 5, Tol: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Fit <= 0 || dec.Fit > 1 {
		t.Fatalf("fit = %v", dec.Fit)
	}
	if got := dec.ReconstructAt([]int{0, 0, 0}); math.IsNaN(got) {
		t.Fatal("reconstruction NaN")
	}
	if Summary(dec) == "" || Summary(nil) == "" {
		t.Fatal("Summary broken")
	}
}

func TestPublicAPIDistributed(t *testing.T) {
	x, err := GeneratePreset("netflix", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewPartition(x, 4, FineGrain, PartitionHypergraph, 3)
	if err != nil {
		t.Fatal(err)
	}
	ranks := PaperRanks(x.Order())
	for n := range ranks {
		if ranks[n] > x.Dims[n] {
			ranks[n] = x.Dims[n]
		}
	}
	dres, err := DecomposeDistributed(x, part, DistConfig{Ranks: ranks, MaxIters: 2, Tol: -1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if dres.Stats == nil || dres.Stats.P != 4 {
		t.Fatal("missing distributed stats")
	}
	if len(dres.Factors) != 3 {
		t.Fatal("missing factors")
	}
}

func TestPublicAPITensorIO(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.tns")
	x := NewSparseTensor([]int{3, 3}, 1)
	x.Append([]int{1, 2}, 4.5)
	if err := WriteTensorFile(path, x); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTensorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 1 || got.Val[0] != 4.5 {
		t.Fatal("roundtrip failed")
	}
}

func TestGeneratePresetErrors(t *testing.T) {
	if _, err := GeneratePreset("nope", 1); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestPublicAPISTHOSVDAndWarmStart(t *testing.T) {
	x, err := GeneratePreset("random", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	ranks := []int{3, 3, 3}
	st, err := DecomposeSTHOSVD(x, STHOSVDOptions{Ranks: ranks, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Fit <= 0 || len(st.Factors) != 3 {
		t.Fatalf("ST-HOSVD result malformed: fit=%v", st.Fit)
	}
	warm, err := Decompose(x, Options{Ranks: ranks, MaxIters: 2, Tol: -1, Seed: 1, Initial: st.Factors})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Fit < st.Fit-1e-9 {
		t.Fatalf("warm-started HOOI regressed: %v -> %v", st.Fit, warm.Fit)
	}
}

func TestPublicAPICSFFormat(t *testing.T) {
	x, err := GeneratePreset("netflix", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	ranks := PaperRanks(x.Order())
	for n := range ranks {
		if ranks[n] > x.Dims[n] {
			ranks[n] = x.Dims[n]
		}
	}
	base := Options{Ranks: ranks, MaxIters: 3, Tol: -1, Seed: 2}
	coo, err := Decompose(x, base)
	if err != nil {
		t.Fatal(err)
	}
	base.Format = FormatCSF
	csf, err := Decompose(x, base)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(coo.Fit - csf.Fit); d > 1e-8 {
		t.Fatalf("formats diverge by %g", d)
	}
	if csf.IndexBytes >= coo.IndexBytes {
		t.Fatalf("CSF index bytes %d not below COO %d", csf.IndexBytes, coo.IndexBytes)
	}
	// Standalone conversion through the public surface.
	c := BuildCSF(x, CSFOptions{})
	var s Sparse = c
	if s.NNZ() != x.Clone().SortDedup().NNZ() {
		t.Fatal("BuildCSF lost nonzeros")
	}
}
